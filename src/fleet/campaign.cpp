#include "src/fleet/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/adapt/camstored.hpp"
#include "src/adapt/resolvd.hpp"
#include "src/attack/battery.hpp"
#include "src/defense/canary.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/heap_smash.hpp"
#include "src/obs/obs.hpp"
#include "src/util/parallel.hpp"

namespace connlab::fleet {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void Fold(std::uint64_t& digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (8 * i)) & 0xffu;
    digest *= kFnvPrime;
  }
}

struct ClientState {
  ClientTraits traits;
  util::Rng rng{0};
  std::uint32_t remaining = 0;  // queries left in the current session
  bool attached = false;
  bool roamed = false;
  bool renew_scheduled = false;
  bool canary_burned = false;  // guard already brute-forced
};

std::string ClientName(std::uint32_t id) { return "c" + std::to_string(id); }

}  // namespace

std::string_view BugClassName(BugClass bug_class) noexcept {
  switch (bug_class) {
    case BugClass::kStackSmash:
      return "stack-smash";
    case BugClass::kPointerLoop:
      return "pointer-loop";
    case BugClass::kHeapMetadata:
      return "heap-metadata";
  }
  return "unknown";
}

util::Result<FleetResult> RunFleetCampaign(const FleetConfig& config) {
  if (config.victims == 0) {
    return util::InvalidArgument("victims must be positive");
  }
  if (config.max_concurrent == 0) {
    return util::InvalidArgument("max_concurrent must be positive");
  }
  if (config.population.diversity_bits < 0 ||
      config.population.diversity_bits > 8) {
    return util::InvalidArgument("diversity_bits must be in [0, 8]");
  }
  const std::uint64_t variants = 1ull << config.population.diversity_bits;
  if (config.profiled_variant >= variants) {
    return util::InvalidArgument("profiled_variant outside the variant space");
  }
  if (config.ap.lease_ttl_us == 0) {
    // Crashed and shelled devices leak their leases; without expiry a long
    // campaign wedges on a permanently exhausted pool.
    return util::InvalidArgument("fleet campaigns need a nonzero lease TTL");
  }

  OBS_TRACE_SPAN(span, "fleet", "RunFleetCampaign");
  const auto wall_start = std::chrono::steady_clock::now();

  FleetResult r;
  r.bug_class = config.bug_class;
  r.victims = config.victims;
  r.digest = kFnvOffset;

  // The attacker's lab boot IS the captured device: same variant seed, same
  // diversity setting, so the recovered addresses are that variant's — the
  // rest of the fleet is compromised only insofar as it shares them. The
  // stack class delivers through the dnsproxy (query + raced response); the
  // zoo classes deliver a plain request sequence to their daemon.
  const std::uint64_t victim_seed0 = config.seed ^ 0x9e3779b97f4a7c15ull;
  loader::ProtectionConfig lab_prot = config.base;
  if (config.population.diversity_bits > 0) {
    lab_prot.stochastic_diversity = true;
  }
  attack::VolleyBattery battery;
  std::vector<util::Bytes> service_requests;
  switch (config.bug_class) {
    case BugClass::kStackSmash: {
      const exploit::Technique technique =
          exploit::TechniqueFor(config.arch, config.base);
      CONNLAB_ASSIGN_OR_RETURN(
          battery,
          attack::BuildVolleyBattery(config.arch, lab_prot,
                                     victim_seed0 + config.profiled_variant,
                                     {technique}));
      break;
    }
    case BugClass::kPointerLoop: {
      // Pure wire bytes: no lab boot, nothing to profile.
      service_requests.push_back(adapt::Resolvd::SelfPointerQuery(0x1007));
      break;
    }
    case BugClass::kHeapMetadata: {
      // The heap plan does come from a lab boot, but every address in it is
      // allocator geometry the diversity shuffle never moves.
      CONNLAB_ASSIGN_OR_RETURN(
          auto lab, loader::Boot(config.arch, lab_prot,
                                 victim_seed0 + config.profiled_variant));
      adapt::Camstored lab_daemon(*lab);
      CONNLAB_ASSIGN_OR_RETURN(const exploit::TargetProfile profile,
                               lab_daemon.ProfileFor());
      CONNLAB_ASSIGN_OR_RETURN(const exploit::HeapUnlinkPlan plan,
                               exploit::BuildHeapUnlinkPlan(profile));
      service_requests.push_back(
          adapt::Camstored::WrapInPut(plan.benign_body, "pad",
                                      plan.groom_size));
      service_requests.push_back(adapt::Camstored::WrapInPut(
          plan.victim_body, "vic", plan.victim_size));
      service_requests.push_back(adapt::Camstored::WrapInPut(
          plan.overflow_body, "pad", plan.groom_size));
      service_requests.push_back(adapt::Camstored::WrapInDelete("vic"));
      break;
    }
  }

  defense::VictimPool::Config pool_config{config.arch, config.base,
                                          victim_seed0};
  pool_config.superblocks = config.superblocks;
  pool_config.block_links = config.block_links;
  pool_config.shared_blocks = config.shared_blocks;
  defense::VictimPool pool(pool_config);
  // Per-victim boots restore the victim's own variant lane (its diversity
  // draw is the whole point); mitigation hardening only matters when a
  // volley is actually evaluated, so it stays off the restore path and the
  // resident-lane count is 2^b + a handful of hardened eval lanes.
  defense::PolicySpec restore_spec;
  restore_spec.stochastic_diversity = config.population.diversity_bits > 0;
  // Every mismatched variant fails the same way — the volley's addresses
  // are stale — so one representative wrong variant stands in for all of
  // them at evaluation time. Victims on the profiled variant are evaluated
  // exactly.
  const std::uint32_t wrong_rep =
      variants > 1 ? static_cast<std::uint32_t>(
                         (config.profiled_variant + 1) & (variants - 1))
                   : 0;
  // One delivery, three shapes. The volley_id keys the pool's memo, so each
  // bug class owns a distinct id. (For the zoo classes the wrong-variant
  // collapse is exact, not an approximation: their volleys carry no
  // diversity-sensitive addresses, so every variant behaves identically.)
  const auto volley_id = static_cast<std::uint64_t>(config.bug_class);
  const auto fire = [&](std::uint32_t eval_variant,
                        const defense::PolicySpec& spec)
      -> util::Result<defense::VictimPool::VolleyOutcome> {
    switch (config.bug_class) {
      case BugClass::kStackSmash:
        return pool.FireVolley(eval_variant, spec, volley_id,
                               battery.query_wire,
                               battery.volleys[0].response_wire);
      case BugClass::kPointerLoop:
        return pool.FireServiceVolley(
            eval_variant, spec, volley_id,
            defense::VictimPool::ServiceKind::kResolvd, service_requests);
      case BugClass::kHeapMetadata:
        return pool.FireServiceVolley(
            eval_variant, spec, volley_id,
            defense::VictimPool::ServiceKind::kCamstored, service_requests);
    }
    return util::InvalidArgument("unknown bug class");
  };
  RogueAp ap(config.ap);
  EventQueue queue;
  const util::Rng master(config.seed);
  std::unordered_map<std::uint32_t, ClientState> active;
  std::uint64_t next_client = 0;

  const SimTime ttl = config.ap.lease_ttl_us;
  const SimTime stagger =
      std::max<SimTime>(config.population.join_stagger_us, 1);
  const SimTime gap_span =
      2 * std::max<SimTime>(config.population.query_gap_us, 1);

  auto seat = [&](SimTime at) {
    if (next_client >= config.victims) return;
    const auto id = static_cast<std::uint32_t>(next_client++);
    ClientState st;
    st.rng = master.Split(id);
    st.traits = SampleTraits(config.population, st.rng);
    st.remaining = st.traits.queries;
    active.emplace(id, std::move(st));
    queue.Push({at, Event::Kind::kJoin, id});
  };
  auto retire = [&](std::uint32_t id, SimTime at) {
    active.erase(id);
    seat(at + stagger);
  };

  const std::uint64_t initial =
      std::min<std::uint64_t>(config.max_concurrent, config.victims);
  for (std::uint64_t i = 0; i < initial; ++i) {
    seat(static_cast<SimTime>(i) * stagger);
  }
  if (ttl > 0) queue.Push({ttl, Event::Kind::kHousekeep, 0});

  while (!queue.empty()) {
    const Event ev = queue.Pop();
    const SimTime now = queue.now();
    switch (ev.kind) {
      case Event::Kind::kHousekeep: {
        r.lease_expiries += ap.dhcp().ExpireLeases(now);
        if (!active.empty() || next_client < config.victims) {
          queue.Push({now + ttl, Event::Kind::kHousekeep, 0});
        }
        break;
      }

      case Event::Kind::kJoin: {
        auto it = active.find(ev.client);
        if (it == active.end()) break;
        ClientState& st = it->second;
        if (!ap.dhcp().Offer(ClientName(ev.client), now).ok()) {
          // Pool exhausted: back off half a lease and try again.
          ++r.join_retries;
          queue.Push({now + ttl / 2 + 1, Event::Kind::kJoin, ev.client});
          break;
        }
        ++r.joins;
        st.attached = true;
        // The device boots when it attaches: a dirty-page restore of its
        // diversity variant under its own sampled mitigation policy.
        CONNLAB_RETURN_IF_ERROR(
            pool.BootVictim(st.traits.variant, restore_spec));
        Fold(r.digest, (static_cast<std::uint64_t>(ev.client) << 3) | 1u);
        queue.Push({now + 1 + st.rng.NextBelow(gap_span), Event::Kind::kQuery,
                    ev.client});
        if (ttl > 0 && !st.renew_scheduled) {
          st.renew_scheduled = true;
          queue.Push(
              {now + (ttl > 1 ? ttl - 1 : 1), Event::Kind::kRenew, ev.client});
        }
        break;
      }

      case Event::Kind::kRenew: {
        auto it = active.find(ev.client);
        if (it == active.end()) break;
        ClientState& st = it->second;
        if (!st.attached) {
          // Roamed away; the next join starts a fresh renew chain.
          st.renew_scheduled = false;
          break;
        }
        if (ap.dhcp().Offer(ClientName(ev.client), now).ok()) ++r.renews;
        queue.Push(
            {now + (ttl > 1 ? ttl - 1 : 1), Event::Kind::kRenew, ev.client});
        break;
      }

      case Event::Kind::kQuery: {
        auto it = active.find(ev.client);
        if (it == active.end()) break;
        ClientState& st = it->second;
        if (!st.attached) break;
        const std::uint64_t name =
            SampleQueryName(config.population, st.rng);
        const bool raced = st.rng.NextBool(config.attack_rate);
        ++r.queries;
        if (!raced) {
          const bool hit = ap.ServeBenignQuery(name);
          Fold(r.digest, (name << 1) | (hit ? 1u : 0u));
        } else {
          ++r.deliveries;
          const std::uint32_t eval_variant =
              st.traits.variant == config.profiled_variant
                  ? st.traits.variant
                  : wrong_rep;
          defense::PolicySpec spec = st.traits.policy;
          if (st.canary_burned) spec.canary_bits = 0;
          CONNLAB_ASSIGN_OR_RETURN(
              defense::VictimPool::VolleyOutcome outcome,
              fire(eval_variant, spec));
          using Kind = connman::ProxyOutcome::Kind;
          // A weak canary is a traffic problem, not a defense: when the
          // attacker's per-victim response budget covers the expected
          // guess count, the guard falls and the volley lands on the
          // unguarded lane (same variant, other mitigations intact). Only
          // the stack class aborts through a canary — a heap-integrity
          // abort is a different trap, and no amount of traffic guesses a
          // chunk secret the exploit never has to match.
          if (config.bug_class == BugClass::kStackSmash &&
              outcome.kind == Kind::kAbort && spec.canary_bits > 0) {
            const double expected =
                defense::StackCanary(spec.canary_bits)
                    .ExpectedBruteForceAttempts();
            if (expected <= static_cast<double>(config.brute_budget)) {
              ++r.canaries_defeated;
              r.brute_responses += static_cast<std::uint64_t>(expected);
              st.canary_burned = true;
              spec.canary_bits = 0;
              CONNLAB_ASSIGN_OR_RETURN(outcome, fire(eval_variant, spec));
            }
          }
          Fold(r.digest, (static_cast<std::uint64_t>(ev.client) << 8) |
                             static_cast<std::uint64_t>(outcome.kind));
          if (outcome.shell) {
            // Shelled: the attacker keeps the device attached; its lease
            // lapses on its own once renewals stop.
            ++r.compromised;
            OBS_COUNT("fleet.compromised");
            retire(ev.client, now);
            break;
          }
          if (outcome.crashed) {
            ++r.crashed;
            retire(ev.client, now);
            break;
          }
          if (outcome.trapped) ++r.trapped;
        }
        --st.remaining;
        if (st.remaining > 0) {
          queue.Push({now + 1 + st.rng.NextBelow(gap_span),
                      Event::Kind::kQuery, ev.client});
        } else if (st.traits.roams && !st.roamed) {
          // Roam: detach (address back to the pool) and re-attach shortly;
          // the returning client usually renumbers.
          st.roamed = true;
          st.attached = false;
          ap.dhcp().Release(ClientName(ev.client));
          ++r.roams;
          st.remaining = 1 + st.traits.queries / 2;
          queue.Push({now + 1 + st.rng.NextBelow(gap_span),
                      Event::Kind::kJoin, ev.client});
        } else {
          queue.Push({now + 1, Event::Kind::kLeave, ev.client});
        }
        break;
      }

      case Event::Kind::kLeave: {
        auto it = active.find(ev.client);
        if (it == active.end()) break;
        ap.dhcp().Release(ClientName(ev.client));
        ++r.leaves;
        Fold(r.digest, (static_cast<std::uint64_t>(ev.client) << 3) | 2u);
        retire(ev.client, now);
        break;
      }
    }
  }

  r.cache_hits = ap.cache().hits();
  r.cache_misses = ap.cache().misses();
  r.cache_evictions = ap.cache().evictions();
  r.pool = pool.stats();
  r.sim_end_us = queue.now();
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  r.victims_per_sec =
      r.wall_seconds > 0.0
          ? static_cast<double>(r.victims) / r.wall_seconds
          : 0.0;
  OBS_COUNT_N("fleet.victims_simulated", r.victims);
  OBS_COUNT_N("fleet.queries", r.queries);
  OBS_COUNT_N("fleet.deliveries", r.deliveries);
  span.Arg("victims", r.victims);
  span.Arg("compromised", r.compromised);
  return r;
}

util::Result<std::vector<SurvivalPoint>> RunSurvivalSweep(
    FleetConfig config, const std::vector<int>& entropy_bits,
    std::size_t sweep_workers) {
  if (entropy_bits.empty()) {
    return util::InvalidArgument("need at least one entropy point");
  }
  // Same seed, same population, three attackers per point: every class sees
  // the identical fleet, so the per-class columns are directly comparable.
  // Each (point, class) campaign is a closed virtual-time simulation, so
  // the task list fans out across threads; results land in per-task slots
  // and the curve is assembled in point-then-class order below, making the
  // output — including which error propagates first — independent of which
  // thread finished when.
  static constexpr BugClass kSweepClasses[] = {
      BugClass::kStackSmash, BugClass::kPointerLoop, BugClass::kHeapMetadata};
  constexpr std::size_t kClassCount = std::size(kSweepClasses);
  const std::size_t tasks = entropy_bits.size() * kClassCount;
  std::vector<std::optional<util::Result<FleetResult>>> results(tasks);
  util::ParallelFor(tasks, util::ResolveWorkerCount(sweep_workers),
                    [&](std::size_t t) {
                      FleetConfig c = config;
                      c.population.diversity_bits =
                          entropy_bits[t / kClassCount];
                      c.bug_class = kSweepClasses[t % kClassCount];
                      results[t].emplace(RunFleetCampaign(c));
                    });

  std::vector<SurvivalPoint> curve;
  curve.reserve(entropy_bits.size());
  for (std::size_t p = 0; p < entropy_bits.size(); ++p) {
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (!results[p * kClassCount + c]->ok()) {
        return results[p * kClassCount + c]->status();
      }
    }
    const FleetResult& stack = results[p * kClassCount + 0]->value();
    const FleetResult& loop = results[p * kClassCount + 1]->value();
    const FleetResult& heap = results[p * kClassCount + 2]->value();
    SurvivalPoint point;
    point.diversity_bits = entropy_bits[p];
    point.victims = stack.victims;
    point.compromised = stack.compromised;
    point.crashed = stack.crashed;
    point.compromised_fraction = stack.compromised_fraction();
    point.digest = stack.digest;
    point.victims_per_sec = stack.victims_per_sec;
    point.loop_crashed = loop.crashed;
    point.loop_crashed_fraction =
        loop.victims == 0 ? 0.0
                          : static_cast<double>(loop.crashed) /
                                static_cast<double>(loop.victims);
    point.loop_digest = loop.digest;
    point.heap_compromised = heap.compromised;
    point.heap_compromised_fraction = heap.compromised_fraction();
    point.heap_crashed = heap.crashed;
    point.heap_trapped = heap.trapped;
    point.heap_digest = heap.digest;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace connlab::fleet
