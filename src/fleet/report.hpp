// Rendering for fleet campaigns: the human-readable summary, the survival
// curve table, and the machine-readable JSON the bench tripwire and the
// experiment notebooks consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/campaign.hpp"

namespace connlab::fleet {

/// Multi-line human summary of one campaign.
std::string RenderFleetReport(const FleetResult& result);

/// The survival curve as an aligned table: one row per entropy point.
std::string RenderSurvivalCurve(const std::vector<SurvivalPoint>& curve);

/// JSON document with campaign metadata + one object per curve point.
std::string SurvivalCurveJson(const std::vector<SurvivalPoint>& curve,
                              std::uint64_t seed, std::uint64_t victims);

/// Folds every point's digest into one curve digest — the value two runs
/// of the same (seed, config) must reproduce exactly.
std::uint64_t CurveDigest(const std::vector<SurvivalPoint>& curve);

}  // namespace connlab::fleet
