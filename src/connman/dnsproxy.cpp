#include "src/connman/dnsproxy.hpp"

#include <cstdio>

#include "src/dns/name.hpp"
#include "src/dns/record.hpp"
#include "src/obs/obs.hpp"
#include "src/util/log.hpp"

namespace connlab::connman {

namespace {
constexpr std::uint8_t kCompression = dns::kCompressionFlags;
constexpr int kMaxPointerHops = 10;  // matches dnsproxy.c's recursion cap
}  // namespace

std::string_view VersionName(Version v) noexcept {
  return v == Version::k134 ? "1.34 (vulnerable)" : "1.35 (patched)";
}

std::string_view OutcomeKindName(ProxyOutcome::Kind kind) noexcept {
  using Kind = ProxyOutcome::Kind;
  switch (kind) {
    case Kind::kDroppedInvalid: return "dropped-invalid";
    case Kind::kParseError: return "parse-error";
    case Kind::kParsedOk: return "parsed-ok";
    case Kind::kCrash: return "crash";
    case Kind::kShell: return "root-shell";
    case Kind::kExec: return "exec";
    case Kind::kAbort: return "abort";
    case Kind::kCfiViolation: return "cfi-violation";
    case Kind::kOther: return "other";
  }
  return "?";
}

std::string ProxyOutcome::ToString() const {
  std::string out(OutcomeKindName(kind));
  if (!detail.empty()) out += ": " + detail;
  if (stop.reason != vm::StopReason::kRunning) {
    out += " [" + stop.ToString() + "]";
  }
  return out;
}

DnsProxy::DnsProxy(loader::System& sys, Version version)
    : sys_(sys),
      version_(version),
      frame_(FrameFor(sys.prot, sys.arch)),
      frame_base_(FrameBase(sys.layout, frame_)) {
  // Sentinel the guest copy routine returns to; stops the CPU so the
  // native parser can continue. Idempotent across proxies on one system.
  auto done = sys_.Sym("connman.copy_done");
  if (done.ok() && !sys_.cpu->IsHostFn(done.value())) {
    (void)sys_.cpu->RegisterHostFn(
        done.value(), "connman.copy_done", [](vm::Cpu& cpu) {
          cpu.RequestStop(vm::StopReason::kHalted, "label copied");
          return util::OkStatus();
        });
  }
}

util::Result<util::Bytes> DnsProxy::AcceptClientQuery(util::ByteSpan wire) {
  CONNLAB_ASSIGN_OR_RETURN(dns::Message query, dns::Decode(wire));
  if (query.header.qr) return util::InvalidArgument("not a query");
  if (query.questions.size() != 1) {
    return util::InvalidArgument("dnsproxy forwards single-question queries");
  }
  Pending pending;
  pending.query = query;
  // Pre-encode the question section for the byte-exact echo check.
  util::ByteWriter w;
  CONNLAB_RETURN_IF_ERROR(dns::EncodeName(w, query.questions[0].name));
  w.WriteU16BE(static_cast<std::uint16_t>(query.questions[0].type));
  w.WriteU16BE(static_cast<std::uint16_t>(query.questions[0].klass));
  pending.question_wire = std::move(w).Take();
  pending_[query.header.id] = std::move(pending);
  ++stats_.queries;
  return util::Bytes(wire.begin(), wire.end());
}

DnsProxy::GetNameStatus DnsProxy::GuestCopy(mem::GuestAddr dst,
                                            mem::GuestAddr src,
                                            std::uint32_t len) {
  auto& cpu = *sys_.cpu;
  auto copy_fn = sys_.Sym("connman.copy_label");
  auto done = sys_.Sym("connman.copy_done");
  if (!copy_fn.ok() || !done.ok()) return GetNameStatus::kGuestFault;

  // Callee frames live below parse_response's buffer, like real ones.
  cpu.set_sp(frame_base_ - 0x40);
  if (sys_.arch == isa::Arch::kVX86) {
    // cdecl: push args right-to-left, then the return address.
    if (!cpu.Push(len).ok() || !cpu.Push(src).ok() || !cpu.Push(dst).ok() ||
        !cpu.Push(done.value()).ok()) {
      return GetNameStatus::kGuestFault;
    }
  } else {
    cpu.set_reg(isa::kR0, dst);
    cpu.set_reg(isa::kR1, src);
    cpu.set_reg(isa::kR2, len);
    cpu.set_reg(isa::kLR, done.value());
  }
  // The shadow stack (CFI builds) must tolerate this legitimate call. Only
  // VX86 needs the entry: its copy routine returns via the checked `ret`;
  // VARM returns via `bx lr`, which CFI CaRE leaves to the link register.
  if (cpu.shadow_stack_enabled() && sys_.arch == isa::Arch::kVX86) {
    cpu.ShadowPush(done.value());
  }
  cpu.set_pc(copy_fn.value());
  const vm::StopInfo stop = cpu.Run(/*max_steps=*/64 + 8ull * len);
  if (stop.reason == vm::StopReason::kHalted && stop.detail == "label copied") {
    return GetNameStatus::kOk;
  }
  guest_copy_stop_ = stop;
  return GetNameStatus::kGuestFault;
}

DnsProxy::GetNameStatus DnsProxy::GetName(util::ByteSpan wire,
                                          std::size_t offset,
                                          std::size_t* end_offset,
                                          std::uint32_t* name_len) {
  std::size_t pos = offset;
  bool jumped = false;
  int hops = 0;
  const mem::GuestAddr buf = frame_base_;

  while (true) {
    if (pos >= wire.size()) return GetNameStatus::kWireError;
    const std::uint8_t len = wire[pos];
    if ((len & kCompression) == kCompression) {
      if (pos + 1 >= wire.size()) return GetNameStatus::kWireError;
      if (++hops > kMaxPointerHops) return GetNameStatus::kWireError;
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | wire[pos + 1];
      if (!jumped) {
        *end_offset = pos + 2;
        jumped = true;
      }
      if (target >= wire.size()) return GetNameStatus::kWireError;
      pos = target;
      continue;
    }
    if ((len & kCompression) != 0) return GetNameStatus::kWireError;
    if (len == 0) {
      if (!jumped) *end_offset = pos + 1;
      return GetNameStatus::kOk;
    }
    if (pos + 1 + len > wire.size()) return GetNameStatus::kWireError;

    if (version_ == Version::k135) {
      // The August 2017 fix: refuse to expand past the buffer (the +2
      // covers the length byte and the look-ahead byte of the copy).
      if (*name_len + static_cast<std::uint32_t>(len) + 2 > kNameBufSize) {
        return GetNameStatus::kTooLong;
      }
    }

    // The vulnerable copy (paper Listing 1):
    //   name[(*name_len)++] = label_len;
    //   memcpy(name + *name_len, p + 1, label_len + 1);
    //   *name_len += label_len;
    // i.e. one length byte, `len` content bytes, plus one look-ahead byte
    // (the next length byte; overwritten by the next iteration, or left as
    // the terminating 0). On the wire those len+2 bytes are contiguous at
    // `pos`, so the copy is a straight guest-to-guest move from the packet
    // buffer on the heap into the stack buffer.
    const std::uint32_t chunk_len = static_cast<std::uint32_t>(len) + 2;
    if (guest_copy_) {
      const GetNameStatus st =
          GuestCopy(buf + *name_len,
                    sys_.layout.heap_base + static_cast<std::uint32_t>(pos),
                    chunk_len);
      if (st != GetNameStatus::kOk) return st;
    } else {
      util::Bytes chunk;
      chunk.reserve(chunk_len);
      chunk.push_back(len);
      chunk.insert(chunk.end(),
                   wire.begin() + static_cast<std::ptrdiff_t>(pos + 1),
                   wire.begin() + static_cast<std::ptrdiff_t>(pos + 1 + len));
      chunk.push_back(pos + 1 + len < wire.size() ? wire[pos + 1 + len] : 0);
      if (!sys_.space.WriteBytes(buf + *name_len, chunk).ok()) {
        return GetNameStatus::kGuestFault;  // ran off the stack: SIGSEGV
      }
    }
    *name_len += 1 + len;
    pos += 1 + len;
  }
}

util::Status DnsProxy::PrepareFrame() {
  auto& space = sys_.space;
  const auto& layout = sys_.layout;
  // Zero the frame and the caller area above it (the region a fresh call
  // chain would occupy).
  const std::uint32_t region =
      layout.stack_top - frame_base_;
  CONNLAB_RETURN_IF_ERROR(
      space.WriteBytes(frame_base_, util::Bytes(region, 0)));

  if (frame_.canary) {
    CONNLAB_RETURN_IF_ERROR(space.WriteU32(
        frame_base_ + frame_.canary_offset(), sys_.canary_value));
  }
  // Benign saved registers.
  const std::uint32_t saved = frame_.saved_regs_offset();
  for (std::uint32_t i = 0; i < frame_.saved_regs_size(); i += 4) {
    CONNLAB_RETURN_IF_ERROR(
        space.WriteU32(frame_base_ + saved + i, 0xC0DE0000u + i));
  }
  // Legitimate return address: the resume sentinel. Under CFI the shadow
  // stack records it as the only valid return target for this frame.
  CONNLAB_ASSIGN_OR_RETURN(mem::GuestAddr resume, sys_.Sym("connman.resume_ok"));
  CONNLAB_RETURN_IF_ERROR(
      space.WriteU32(frame_base_ + frame_.ret_offset(), resume));
  if (sys_.cpu->shadow_stack_enabled()) {
    sys_.cpu->ShadowClear();
    sys_.cpu->ShadowPush(resume);
  }

  if (sys_.arch == isa::Arch::kVARM) {
    // parse_rr's pointer slots in the caller frame: benign values point
    // into .scratch (these are the values gdb shows and the exploits echo).
    const mem::GuestAddr chain = frame_base_ + frame_.chain_offset();
    CONNLAB_RETURN_IF_ERROR(space.WriteU32(
        chain + kArmParseRrSlot0, layout.scratch_base + kScratchPtr0Off));
    CONNLAB_RETURN_IF_ERROR(space.WriteU32(
        chain + kArmParseRrSlot1, layout.scratch_base + kScratchPtr1Off));
  }
  return util::OkStatus();
}

vm::StopInfo DnsProxy::SynthesizeFaultStop(const std::string& where) {
  vm::StopInfo stop;
  stop.reason = vm::StopReason::kFault;
  stop.detail = where;
  stop.pc = sys_.Sym("connman." + where).value_or(0);
  if (sys_.space.last_fault().has_value()) {
    stop.fault = sys_.space.last_fault();
    sys_.space.ClearFault();
  }
  return stop;
}

ProxyOutcome DnsProxy::HandleServerResponse(util::ByteSpan wire) {
  using Kind = ProxyOutcome::Kind;
  ++stats_.responses;
  ProxyOutcome outcome;

  // --- Sanity checks a real response must pass ("appear legitimate") -----
  if (wire.size() < dns::kHeaderSize) {
    ++stats_.dropped;
    outcome.kind = Kind::kDroppedInvalid;
    outcome.detail = "short packet";
    return outcome;
  }
  const std::uint16_t id =
      static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
  const std::uint16_t flags =
      static_cast<std::uint16_t>((wire[2] << 8) | wire[3]);
  const std::uint16_t qdcount =
      static_cast<std::uint16_t>((wire[4] << 8) | wire[5]);
  const std::uint16_t ancount =
      static_cast<std::uint16_t>((wire[6] << 8) | wire[7]);

  auto pending_it = pending_.find(id);
  if (pending_it == pending_.end() || (flags & 0x8000) == 0 || qdcount != 1) {
    ++stats_.dropped;
    outcome.kind = Kind::kDroppedInvalid;
    outcome.detail = "no matching query / not a response";
    return outcome;
  }
  const Pending& pending = pending_it->second;
  const std::size_t qlen = pending.question_wire.size();
  if (wire.size() < dns::kHeaderSize + qlen ||
      !std::equal(pending.question_wire.begin(), pending.question_wire.end(),
                  wire.begin() + dns::kHeaderSize)) {
    ++stats_.dropped;
    outcome.kind = Kind::kDroppedInvalid;
    outcome.detail = "question echo mismatch";
    return outcome;
  }

  // --- Stage the packet and the guest frame ------------------------------
  if (wire.size() > sys_.layout.heap_size) {
    ++stats_.dropped;
    outcome.kind = Kind::kDroppedInvalid;
    outcome.detail = "oversized datagram";
    return outcome;
  }
  if (!sys_.space.WriteBytes(sys_.layout.heap_base, wire).ok() ||
      !PrepareFrame().ok()) {
    outcome.kind = Kind::kOther;
    outcome.detail = "failed to stage guest state";
    return outcome;
  }
  sys_.cpu->ClearEvents();

  // --- parse_response over the answer section ----------------------------
  std::size_t pos = dns::kHeaderSize + qlen;
  const std::string& qname = pending.query.questions[0].name;
  bool parse_error = false;
  std::string parse_detail;

  for (int rec = 0; rec < ancount && !parse_error; ++rec) {
    std::uint32_t name_len = 0;  // buffer reused per record
    std::size_t end = pos;
    const GetNameStatus st = GetName(wire, pos, &end, &name_len);
    outcome.name_bytes_written += name_len;
    outcome.overflowed |= name_len + 1 > kNameBufSize;
    switch (st) {
      case GetNameStatus::kOk:
        break;
      case GetNameStatus::kWireError:
        parse_error = true;
        parse_detail = "record name runs off packet";
        continue;
      case GetNameStatus::kTooLong:
        parse_error = true;
        parse_detail = "get_name: name exceeds buffer (patched bound check)";
        continue;
      case GetNameStatus::kGuestFault:
        // The copy ran off the top of the stack mapping: immediate crash.
        ++stats_.crashes;
        outcome.kind = Kind::kCrash;
        outcome.detail = "overflow ran off the stack in get_name";
        if (guest_copy_stop_.has_value()) {
          outcome.stop = *guest_copy_stop_;   // the faulting strb, verbatim
          guest_copy_stop_.reset();
        } else {
          outcome.stop = SynthesizeFaultStop("get_name");
        }
        return outcome;
    }
    pos = end;
    // Fixed RR fields.
    if (pos + 10 > wire.size()) {
      parse_error = true;
      parse_detail = "truncated RR header";
      continue;
    }
    const std::uint16_t type =
        static_cast<std::uint16_t>((wire[pos] << 8) | wire[pos + 1]);
    const std::uint32_t ttl =
        (static_cast<std::uint32_t>(wire[pos + 4]) << 24) |
        (static_cast<std::uint32_t>(wire[pos + 5]) << 16) |
        (static_cast<std::uint32_t>(wire[pos + 6]) << 8) |
        static_cast<std::uint32_t>(wire[pos + 7]);
    const std::uint16_t rdlen =
        static_cast<std::uint16_t>((wire[pos + 8] << 8) | wire[pos + 9]);
    pos += 10;
    if (pos + rdlen > wire.size()) {
      parse_error = true;
      parse_detail = "truncated rdata";
      continue;
    }
    const auto type_a = static_cast<std::uint16_t>(dns::Type::kA);
    const auto type_aaaa = static_cast<std::uint16_t>(dns::Type::kAAAA);
    if ((type == type_a && rdlen == 4) || (type == type_aaaa && rdlen == 16)) {
      CacheEntry entry;
      entry.hostname = qname;
      entry.ipv6 = type == type_aaaa;
      entry.rdata.assign(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                         wire.begin() + static_cast<std::ptrdiff_t>(pos + rdlen));
      entry.expires_at = now_ + ttl;
      outcome.cached.push_back(std::move(entry));
    }
    pos += rdlen;
  }

  // --- VARM parse_rr quirks (run on both versions; see frame.hpp) --------
  if (sys_.arch == isa::Arch::kVARM && ancount > 0) {
    const mem::GuestAddr chain = frame_base_ + frame_.chain_offset();
    for (std::uint32_t slot : {kArmParseRrSlot0, kArmParseRrSlot1}) {
      auto ptr = sys_.space.ReadU32(chain + slot);
      if (!ptr.ok()) {
        outcome.kind = Kind::kOther;
        outcome.detail = "parse_rr slot unreadable";
        return outcome;
      }
      if (ptr.value() == 0) {
        // NULL slot: parse_rr treats the record as invalid and bails out
        // through its own clean path — the hijacked epilogue never runs.
        ++stats_.dropped;
        outcome.kind = Kind::kParseError;
        outcome.detail = "parse_rr rejected record (NULL bookkeeping slot)";
        return outcome;
      }
      // The mvn.w store: writes through the slot pointer.
      if (!sys_.space.WriteU32(ptr.value(), ~0x000055AAu).ok()) {
        ++stats_.crashes;
        outcome.kind = Kind::kCrash;
        outcome.detail = "parse_rr stored through corrupted pointer slot";
        outcome.stop = SynthesizeFaultStop("parse_rr");
        return outcome;
      }
    }
    // A subsequent legitimate function reference writes its bookkeeping
    // into the chain region: 8 bytes at +120 (heap pointer + length).
    util::ByteWriter clobber;
    clobber.WriteU32LE(sys_.layout.heap_base + 0x200);
    clobber.WriteU32LE(0x14);
    if (!sys_.space.WriteBytes(chain + kArmChainClobberOffset,
                               clobber.bytes()).ok()) {
      outcome.kind = Kind::kOther;
      outcome.detail = "clobber write failed";
      return outcome;
    }

    // Cleanup before the epilogue: two local slots hold buffer pointers
    // that are released if non-NULL. Overflow junk here means a wild
    // dereference — ARM exploits must write NULLs (paper §III-A2).
    for (std::uint32_t slot_off : {frame_.null_slot0(), frame_.null_slot1()}) {
      auto v = sys_.space.ReadU32(frame_base_ + slot_off);
      if (v.ok() && v.value() != 0 && !sys_.space.ReadU32(v.value()).ok()) {
        ++stats_.crashes;
        outcome.kind = Kind::kCrash;
        outcome.detail = "cleanup dereferenced stale pointer slot";
        outcome.stop = SynthesizeFaultStop("parse_response");
        return outcome;
      }
    }
  }

  // --- Stack protector (if this build has one) ----------------------------
  if (frame_.canary) {
    auto canary = sys_.space.ReadU32(frame_base_ + frame_.canary_offset());
    if (!canary.ok() || canary.value() != sys_.canary_value) {
      OBS_COUNT("defense.canary_traps");
      sys_.cpu->PushEvent(vm::EventKind::kCanaryAbort,
                          "*** stack smashing detected ***: connmand terminated");
      outcome.kind = Kind::kAbort;
      outcome.detail = "stack canary mismatch";
      outcome.stop.reason = vm::StopReason::kAbort;
      outcome.stop.detail = "__stack_chk_fail";
      outcome.stop.pc = sys_.Sym("connman.parse_response").value_or(0);
      return outcome;
    }
  }

  if (parse_error) {
    // Real connman logs and drops the packet; the daemon keeps running.
    ++stats_.dropped;
    outcome.kind = Kind::kParseError;
    outcome.detail = parse_detail;
    return outcome;
  }

  outcome.detail = "parse complete";
  ProxyOutcome final = RunEpilogueAndClassify(std::move(outcome));
  if (final.kind == Kind::kParsedOk) {
    for (const CacheEntry& entry : final.cached) {
      cache_.Insert(entry.hostname, entry.rdata, entry.ipv6,
                    static_cast<std::uint32_t>(entry.expires_at - now_), now_);
    }
    final.reply_to_client.assign(wire.begin(), wire.end());
    pending_.erase(id);
    ++stats_.parsed_ok;
  } else if (final.kind == Kind::kCrash) {
    ++stats_.crashes;
  } else if (final.kind == Kind::kShell) {
    ++stats_.shells;
  }
  return final;
}

ProxyOutcome DnsProxy::RunEpilogueAndClassify(ProxyOutcome outcome) {
  using Kind = ProxyOutcome::Kind;
  auto& cpu = *sys_.cpu;
  auto& space = sys_.space;

  // Function epilogue, against the (possibly smashed) guest frame.
  const mem::GuestAddr saved = frame_base_ + frame_.saved_regs_offset();
  const mem::GuestAddr ret_slot = frame_base_ + frame_.ret_offset();
  auto ret = space.ReadU32(ret_slot);
  if (!ret.ok()) {
    outcome.kind = Kind::kOther;
    outcome.detail = "return slot unreadable";
    return outcome;
  }
  // parse_response's own return is shadow-checked under CFI — the first
  // and decisive control transfer every technique hijacks.
  if (cpu.shadow_stack_enabled() && !cpu.ShadowCheckReturn(ret.value())) {
    OBS_COUNT("defense.cfi_traps");
    cpu.PushEvent(vm::EventKind::kCfiViolation,
                  "CFI: parse_response return target rejected");
    outcome.kind = Kind::kCfiViolation;
    outcome.detail = "CFI violation on function return";
    outcome.stop.reason = vm::StopReason::kCfiViolation;
    outcome.stop.detail = "cfi";
    outcome.stop.pc = ret.value();
    return outcome;
  }
  if (sys_.arch == isa::Arch::kVX86) {
    // pop ebx; pop esi; pop edi; pop ebp; ret
    cpu.set_reg(isa::kEBX, space.ReadU32(saved + 0).value_or(0));
    cpu.set_reg(isa::kESI, space.ReadU32(saved + 4).value_or(0));
    cpu.set_reg(isa::kEDI, space.ReadU32(saved + 8).value_or(0));
    cpu.set_reg(isa::kEBP, space.ReadU32(saved + 12).value_or(0));
  } else {
    // pop {r4-r11, pc}
    for (int i = 0; i < 8; ++i) {
      cpu.set_reg(static_cast<std::uint8_t>(isa::kR4 + i),
                  space.ReadU32(saved + 4 * static_cast<std::uint32_t>(i))
                      .value_or(0));
    }
  }
  cpu.set_sp(frame_base_ + frame_.chain_offset());
  cpu.set_pc(ret.value());

  const vm::StopInfo stop = cpu.Run(budget_);
  outcome.stop = stop;
  switch (stop.reason) {
    case vm::StopReason::kHalted:
      if (stop.detail == "response processed") {
        outcome.kind = Kind::kParsedOk;
        outcome.detail = "cached and forwarded";
      } else {
        outcome.kind = Kind::kOther;
        outcome.detail = "unexpected halt: " + stop.detail;
      }
      break;
    case vm::StopReason::kShellSpawned:
      outcome.kind = Kind::kShell;
      outcome.detail = stop.detail;
      break;
    case vm::StopReason::kProcessExec:
      outcome.kind = Kind::kExec;
      outcome.detail = stop.detail;
      break;
    case vm::StopReason::kFault:
      outcome.kind = Kind::kCrash;
      outcome.detail = "control-flow crash: " + stop.detail;
      break;
    case vm::StopReason::kAbort:
      outcome.kind = Kind::kAbort;
      outcome.detail = stop.detail;
      break;
    case vm::StopReason::kCfiViolation:
      outcome.kind = Kind::kCfiViolation;
      outcome.detail = stop.detail;
      break;
    case vm::StopReason::kExited:
      outcome.kind = Kind::kOther;
      outcome.detail = "daemon exited";
      break;
    default:
      outcome.kind = Kind::kOther;
      outcome.detail = "run ended: " + stop.ToString();
      break;
  }
  return outcome;
}

}  // namespace connlab::connman
