// Connman's DNS response cache (the reason parse_response expands names at
// all: it caches A/AAAA answers keyed by hostname).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::connman {

struct CacheEntry {
  std::string hostname;
  util::Bytes rdata;           // 4 bytes (A) or 16 bytes (AAAA)
  bool ipv6 = false;
  std::uint64_t expires_at = 0;  // sim-time seconds
};

class Cache {
 public:
  explicit Cache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Inserts/refreshes an entry. Oldest-expiry entry is evicted at capacity.
  void Insert(const std::string& hostname, util::Bytes rdata, bool ipv6,
              std::uint32_t ttl, std::uint64_t now);

  /// Valid (unexpired) entries for a hostname.
  [[nodiscard]] std::vector<CacheEntry> Lookup(const std::string& hostname,
                                               std::uint64_t now) const;

  /// Drops expired entries; returns how many were removed.
  std::size_t EvictExpired(std::uint64_t now);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void Clear() noexcept { entries_.clear(); }

 private:
  std::size_t capacity_;
  std::multimap<std::string, CacheEntry> entries_;
};

}  // namespace connlab::connman
