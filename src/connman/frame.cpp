#include "src/connman/frame.hpp"

namespace connlab::connman {

FrameLayout FrameFor(const loader::ProtectionConfig& prot, isa::Arch arch) {
  FrameLayout f;
  f.arch = arch;
  f.canary = prot.canary;
  return f;
}

mem::GuestAddr FrameBase(const loader::Layout& layout, const FrameLayout& frame) {
  return layout.initial_sp() - frame.frame_size();
}

}  // namespace connlab::connman
