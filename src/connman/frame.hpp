// parse_response's guest stack frame: the geometry of CVE-2017-12865.
//
// The 1024-byte `name` buffer sits at the bottom of parse_response's frame;
// everything the exploit cares about lies above it, at fixed offsets the
// paper's authors recovered with gdb and we expose to the Debugger:
//
//   VX86 frame (no canary):            VARM frame (no canary):
//     +0    name[1024]                   +0    name[1024]
//     +1024 locals (16)                  +1024 locals (16)
//     +1040 saved ebx/esi/edi (12)             +1028/+1032: cleanup ptr
//     +1052 saved ebp                                slots, must be NULL
//     +1056 return address               +1040 saved r4-r11 (32)
//     +1060 caller frame ...             +1072 saved lr  (the hijack slot)
//                                        +1076 caller frame (= ROP chain)
//
// With the stack protector enabled a canary word is inserted right after
// the buffer (all following offsets shift by 4) and checked before the
// epilogue — the paper compiled it out; we keep it for the E8 ablation.
//
// VARM-only quirks reproduced from the paper:
//  * Two locals ("cleanup pointer slots") are checked before the epilogue;
//    a non-NULL value is treated as a stale buffer pointer and dereferenced
//    — garbage faults. The ARM exploits must write NULLs there (§III-A2).
//  * parse_rr keeps two pointers in its own (caller) frame — at chain
//    offsets +16/+20, exactly the paper's r5/r6 "placeholder" positions —
//    and stores through them (the `mvn.w` write). Zero there means "record
//    invalid": parse_rr bails out cleanly and the hijacked epilogue never
//    runs; an unmapped value SIGSEGVs in parse_rr (the fate of gadgets
//    "with fewer registers"). The benign prefill points them into .scratch.
//  * A "subsequent legitimate function reference" writes 8 bytes at chain
//    offset +120 before the epilogue executes, so any ROP chain longer
//    than 3 call frames (3 x 40 bytes) is corrupted in flight — the
//    paper's "/bi then SIGSEV" behaviour (§III-C2).
#pragma once

#include <cstdint>

#include "src/isa/isa.hpp"
#include "src/loader/layout.hpp"
#include "src/mem/segment.hpp"

namespace connlab::connman {

/// The paper's pre-defined buffer limit in parse_response.
inline constexpr std::uint32_t kNameBufSize = 1024;

/// VARM parse_rr writes 8 bytes of its own bookkeeping at this offset past
/// the saved-lr slot (i.e. into the ROP chain region): 3 chain frames of
/// 40 bytes survive, the 4th does not.
inline constexpr std::uint32_t kArmChainClobberOffset = 120;

/// Chain offsets (relative to the first word after the hijacked lr) of the
/// two parse_rr pointer slots — the r5/r6 positions of the paper's
/// pop {r0,r1,r2,r3,r5,r6,r7,pc} frame.
inline constexpr std::uint32_t kArmParseRrSlot0 = 16;
inline constexpr std::uint32_t kArmParseRrSlot1 = 20;

/// Offsets into .scratch where the benign prefill points those slots.
inline constexpr std::uint32_t kScratchPtr0Off = 0x40;
inline constexpr std::uint32_t kScratchPtr1Off = 0x80;

struct FrameLayout {
  isa::Arch arch = isa::Arch::kVX86;
  bool canary = false;

  /// Offset of the canary word (only meaningful when canary == true).
  [[nodiscard]] std::uint32_t canary_offset() const noexcept { return kNameBufSize; }
  [[nodiscard]] std::uint32_t canary_pad() const noexcept { return canary ? 4u : 0u; }

  [[nodiscard]] std::uint32_t locals_offset() const noexcept {
    return kNameBufSize + canary_pad();
  }
  /// VARM cleanup-pointer slots that must be NULL (within the locals).
  [[nodiscard]] std::uint32_t null_slot0() const noexcept { return locals_offset() + 4; }
  [[nodiscard]] std::uint32_t null_slot1() const noexcept { return locals_offset() + 8; }

  [[nodiscard]] std::uint32_t saved_regs_offset() const noexcept {
    return locals_offset() + 16;
  }
  [[nodiscard]] std::uint32_t saved_regs_size() const noexcept {
    return arch == isa::Arch::kVX86 ? 16u   // ebx, esi, edi, ebp
                                    : 32u;  // r4-r11
  }
  /// Offset of the return-address slot (saved eip / saved lr) from name[0].
  [[nodiscard]] std::uint32_t ret_offset() const noexcept {
    return saved_regs_offset() + saved_regs_size();
  }
  /// Total frame size: everything up to and including the return slot.
  [[nodiscard]] std::uint32_t frame_size() const noexcept {
    return ret_offset() + 4;
  }
  /// Offset where the caller's frame (== ROP chain region) begins.
  [[nodiscard]] std::uint32_t chain_offset() const noexcept { return frame_size(); }
};

/// The frame layout a given boot produces.
FrameLayout FrameFor(const loader::ProtectionConfig& prot, isa::Arch arch);

/// Guest address of parse_response's name[0] for a given layout: the frame
/// is materialised just below the process's initial sp.
mem::GuestAddr FrameBase(const loader::Layout& layout, const FrameLayout& frame);

}  // namespace connlab::connman
