// The simulated Connman dnsproxy: the paper's attack surface.
//
// Faithfully re-implements the dnsproxy.c response path against *guest*
// memory: the response header must look legitimate (id echo, QR, question
// echo) or the packet is dumped; then parse_response expands each answer's
// owner name into the 1024-byte `name` stack buffer via get_name — with the
// CVE-2017-12865 unchecked copy in the 1.34 build, or the 1.35 size check —
// caches A/AAAA answers, runs the parse_rr quirks (see frame.hpp), checks
// the canary if the build has one, and finally *returns through the guest
// stack*: the saved registers and return address are loaded from the frame
// and the CPU interpreter takes over. A clean return reaches the
// connman.resume_ok sentinel; a smashed frame goes wherever the attacker
// pointed it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/connman/cache.hpp"
#include "src/connman/frame.hpp"
#include "src/dns/message.hpp"
#include "src/loader/boot.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::connman {

enum class Version : std::uint8_t {
  k134,  // <= 1.34: vulnerable (no bound check in get_name)
  k135,  // 1.35: patched (size check added August 2017)
};

std::string_view VersionName(Version v) noexcept;

struct ProxyOutcome {
  enum class Kind : std::uint8_t {
    kDroppedInvalid,  // failed header/question sanity checks ("bad response")
    kParseError,      // parser rejected the record (patched path, truncation)
    kParsedOk,        // benign: cached + forwarded to the client
    kCrash,           // SIGSEGV-equivalent (DoS)
    kShell,           // root shell spawned (RCE)
    kExec,            // some other program exec'd
    kAbort,           // canary / fortify abort
    kCfiViolation,    // shadow-stack CFI rejected a return target
    kOther,           // anything else (step limit, unexpected halt)
  };

  Kind kind = Kind::kOther;
  std::string detail;
  vm::StopInfo stop;                    // final CPU state (when the CPU ran)
  std::vector<CacheEntry> cached;      // entries added this response
  util::Bytes reply_to_client;         // forwarded wire bytes when benign
  std::uint32_t name_bytes_written = 0;  // get_name expansion volume
  bool overflowed = false;             // expansion exceeded the 1024 buffer

  [[nodiscard]] std::string ToString() const;
};

std::string_view OutcomeKindName(ProxyOutcome::Kind kind) noexcept;

class DnsProxy {
 public:
  /// Attaches to a booted system. The proxy does not own the System; one
  /// System hosts one proxy (it claims the parse_response stack area).
  DnsProxy(loader::System& sys, Version version);

  DnsProxy(const DnsProxy&) = delete;
  DnsProxy& operator=(const DnsProxy&) = delete;

  /// A query arriving from a local client. Registers it as pending and
  /// returns the bytes to forward to the configured upstream server.
  util::Result<util::Bytes> AcceptClientQuery(util::ByteSpan wire);

  /// A response arriving from the upstream server: the vulnerable path.
  ProxyOutcome HandleServerResponse(util::ByteSpan wire);

  [[nodiscard]] Cache& cache() noexcept { return cache_; }
  [[nodiscard]] const FrameLayout& frame() const noexcept { return frame_; }
  [[nodiscard]] loader::System& system() noexcept { return sys_; }
  [[nodiscard]] Version version() const noexcept { return version_; }

  void set_step_budget(std::uint64_t budget) noexcept { budget_ = budget; }

  /// When true (default), each label's unchecked copy runs as interpreted
  /// guest code (the connman.copy_label routine) instead of a host-side
  /// write — the overflow and any resulting fault execute instruction by
  /// instruction. Host mode is kept for speed-sensitive sweeps.
  void set_guest_copy(bool enabled) noexcept { guest_copy_ = enabled; }
  [[nodiscard]] bool guest_copy() const noexcept { return guest_copy_; }
  void set_now(std::uint64_t now) noexcept { now_ = now; }
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t responses = 0;
    std::uint64_t dropped = 0;
    std::uint64_t parsed_ok = 0;
    std::uint64_t crashes = 0;
    std::uint64_t shells = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    dns::Message query;
    util::Bytes question_wire;  // encoded question section, for echo check
  };

  enum class GetNameStatus : std::uint8_t {
    kOk,
    kWireError,    // ran off the packet / bad pointer
    kTooLong,      // patched bound check fired
    kGuestFault,   // guest write faulted mid-copy (ran off the stack)
  };

  GetNameStatus GetName(util::ByteSpan wire, std::size_t offset,
                        std::size_t* end_offset, std::uint32_t* name_len);
  /// Performs one label copy through the guest CPU (connman.copy_label).
  GetNameStatus GuestCopy(mem::GuestAddr dst, mem::GuestAddr src,
                          std::uint32_t len);
  util::Status PrepareFrame();
  ProxyOutcome RunEpilogueAndClassify(ProxyOutcome outcome);
  vm::StopInfo SynthesizeFaultStop(const std::string& where);

  loader::System& sys_;
  Version version_;
  FrameLayout frame_;
  mem::GuestAddr frame_base_;
  Cache cache_;
  std::map<std::uint16_t, Pending> pending_;
  std::uint64_t now_ = 1000;
  std::uint64_t budget_ = 200000;
  bool guest_copy_ = true;
  std::optional<vm::StopInfo> guest_copy_stop_;
  Stats stats_;
};

}  // namespace connlab::connman
