#include "src/connman/cache.hpp"

#include <algorithm>

namespace connlab::connman {

void Cache::Insert(const std::string& hostname, util::Bytes rdata, bool ipv6,
                   std::uint32_t ttl, std::uint64_t now) {
  // Refresh an identical record instead of duplicating it.
  auto [lo, hi] = entries_.equal_range(hostname);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.rdata == rdata && it->second.ipv6 == ipv6) {
      it->second.expires_at = now + ttl;
      return;
    }
  }
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(entries_.begin(), entries_.end(),
                                   [](const auto& a, const auto& b) {
                                     return a.second.expires_at <
                                            b.second.expires_at;
                                   });
    if (victim != entries_.end()) entries_.erase(victim);
  }
  CacheEntry entry{hostname, std::move(rdata), ipv6, now + ttl};
  entries_.emplace(hostname, std::move(entry));
}

std::vector<CacheEntry> Cache::Lookup(const std::string& hostname,
                                      std::uint64_t now) const {
  std::vector<CacheEntry> out;
  auto [lo, hi] = entries_.equal_range(hostname);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.expires_at > now) out.push_back(it->second);
  }
  return out;
}

std::size_t Cache::EvictExpired(std::uint64_t now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace connlab::connman
