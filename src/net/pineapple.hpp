// The Wi-Fi Pineapple role (§III-D): a rogue access point that
//   1. impersonates a trusted SSID at higher signal strength, so nearby
//      clients roam onto it;
//   2. answers DHCP with itself as the DNS server;
//   3. runs the malicious DNS server that turns every query from the
//      victim into an exploit delivery.
// The victim needs no configuration change beyond its normal
// DHCP+auto-DNS defaults — exactly the paper's setup.
#pragma once

#include <memory>
#include <string>

#include "src/exploit/generator.hpp"
#include "src/net/access_point.hpp"
#include "src/net/fake_dns_server.hpp"
#include "src/net/sim.hpp"

namespace connlab::net {

class Pineapple {
 public:
  /// Mimics `ssid` at `signal_dbm` (choose stronger than the legitimate
  /// AP). The device itself lives at `ip` on its own 10.99.0.x subnet.
  Pineapple(std::string ssid, int signal_dbm, std::string ip = "10.99.0.1");

  /// Starts beaconing and attaches the malicious DNS server.
  void PowerOn(Radio& radio, Network& net);
  void PowerOff(Radio& radio, Network& net);

  /// Arms the embedded DNS server with an exploit.
  void Arm(exploit::TargetProfile profile, exploit::Technique technique) {
    dns_.Arm(std::move(profile), technique);
  }
  void set_dns_mode(FakeDnsServer::Mode mode) { dns_.set_mode(mode); }

  [[nodiscard]] AccessPoint& ap() noexcept { return ap_; }
  [[nodiscard]] FakeDnsServer& dns() noexcept { return dns_; }
  [[nodiscard]] const std::string& ip() const noexcept { return ip_; }

 private:
  std::string ip_;
  AccessPoint ap_;
  FakeDnsServer dns_;
};

}  // namespace connlab::net
