// The simulated LAN: endpoints addressed by IPv4 string, UDP-like
// datagrams, a virtual-time delivery schedule and an opt-in traffic
// capture. Single-threaded and deterministic.
//
// Delivery is driven by a virtual clock, not a FIFO: every datagram is
// scheduled for `now() + latency` (or an explicit deadline via SendAt) and
// the network delivers strictly in (deliver_at, send-sequence) order,
// advancing `now()` as it goes. With the default zero latency this reduces
// exactly to the old send-order drain, so the single-victim scenarios keep
// their behaviour; the fleet simulator leans on the schedule to interleave
// thousands of in-flight exchanges (a lease can expire while a response is
// still in the air — see DeliverUntil).
//
// Traffic capture is opt-in and ring-buffered: `log_` used to record every
// datagram ever sent, which reads as tcpdump in the tests but is an OOM in
// a million-victim campaign. Call EnableCapture() where the full trace is
// wanted; past the cap the oldest datagrams fall off the front.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::net {

/// Virtual microseconds since the simulation epoch.
using SimTime = std::uint64_t;

struct Datagram {
  std::string src_ip;
  std::uint16_t src_port = 0;
  std::string dst_ip;
  std::uint16_t dst_port = 0;
  util::Bytes payload;

  [[nodiscard]] std::string Summary() const;
};

class Network;

/// Anything that can receive datagrams (devices, servers, routers).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Handles one datagram; may call net.Send() to respond.
  virtual void OnDatagram(Network& net, const Datagram& dgram) = 0;
};

class Network {
 public:
  /// Attaches `endpoint` at `ip`. Re-attaching an ip replaces the binding
  /// (devices renumber when they change networks). Endpoint is not owned.
  void Attach(const std::string& ip, Endpoint* endpoint);
  void Detach(const std::string& ip);

  /// Queues a datagram for delivery at now() + latency.
  util::Status Send(Datagram dgram);

  /// Queues a datagram for delivery at virtual time `deliver_at` (clamped
  /// to now(): the past is not addressable).
  util::Status SendAt(Datagram dgram, SimTime deliver_at);

  /// One-way link latency applied by Send(). Zero (the default) keeps the
  /// historical deliver-in-send-order behaviour.
  void set_latency(SimTime latency) noexcept { latency_ = latency; }
  [[nodiscard]] SimTime latency() const noexcept { return latency_; }

  /// The virtual clock: the deadline of the last delivered datagram (or
  /// the last DeliverUntil horizon, whichever is later).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Delivers scheduled datagrams (including ones generated during
  /// delivery) in deadline order until the schedule drains or `max`
  /// deliveries. Returns deliveries made.
  int DeliverAll(int max = 1000);

  /// Delivers every datagram scheduled at or before `deadline`, then
  /// advances now() to `deadline`. Returns deliveries made.
  int DeliverUntil(SimTime deadline, int max = 1000000);

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t pending() const noexcept { return schedule_.size(); }

  /// Starts capturing sent datagrams into a ring buffer of at most
  /// `max_datagrams` entries (tcpdump for the tests). Off by default: a
  /// fleet campaign sends millions of datagrams and must not retain them.
  void EnableCapture(std::size_t max_datagrams = 4096);
  void DisableCapture() noexcept { capture_ = false; }
  [[nodiscard]] bool capturing() const noexcept { return capture_; }
  /// The captured traffic, oldest first (empty unless EnableCapture'd).
  [[nodiscard]] const std::deque<Datagram>& log() const noexcept { return log_; }

 private:
  struct Scheduled {
    SimTime deliver_at = 0;
    std::uint64_t seq = 0;  // tie-break: equal deadlines deliver in send order
    Datagram dgram;
  };
  struct ScheduledAfter {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  util::Status Schedule(Datagram dgram, SimTime deliver_at);
  void DeliverOne(Scheduled item);

  std::map<std::string, Endpoint*> endpoints_;
  std::priority_queue<Scheduled, std::vector<Scheduled>, ScheduledAfter>
      schedule_;
  std::deque<Datagram> log_;
  bool capture_ = false;
  std::size_t capture_cap_ = 0;
  SimTime now_ = 0;
  SimTime latency_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

inline constexpr std::uint16_t kDnsPort = 53;
inline constexpr std::uint16_t kDhcpPort = 67;

}  // namespace connlab::net
