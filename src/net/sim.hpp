// The simulated LAN: endpoints addressed by IPv4 string, UDP-like
// datagrams, a delivery queue and a traffic log. Single-threaded and
// deterministic — delivery order is send order.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::net {

struct Datagram {
  std::string src_ip;
  std::uint16_t src_port = 0;
  std::string dst_ip;
  std::uint16_t dst_port = 0;
  util::Bytes payload;

  [[nodiscard]] std::string Summary() const;
};

class Network;

/// Anything that can receive datagrams (devices, servers, routers).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Handles one datagram; may call net.Send() to respond.
  virtual void OnDatagram(Network& net, const Datagram& dgram) = 0;
};

class Network {
 public:
  /// Attaches `endpoint` at `ip`. Re-attaching an ip replaces the binding
  /// (devices renumber when they change networks). Endpoint is not owned.
  void Attach(const std::string& ip, Endpoint* endpoint);
  void Detach(const std::string& ip);

  /// Queues a datagram for delivery.
  util::Status Send(Datagram dgram);

  /// Delivers queued datagrams (including ones generated during delivery)
  /// until the queue drains or `max` deliveries. Returns deliveries made.
  int DeliverAll(int max = 1000);

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Every datagram ever sent (tcpdump for the tests).
  [[nodiscard]] const std::vector<Datagram>& log() const noexcept { return log_; }

 private:
  std::map<std::string, Endpoint*> endpoints_;
  std::deque<Datagram> queue_;
  std::vector<Datagram> log_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

inline constexpr std::uint16_t kDnsPort = 53;
inline constexpr std::uint16_t kDhcpPort = 67;

}  // namespace connlab::net
