#include "src/net/pineapple.hpp"

namespace connlab::net {

Pineapple::Pineapple(std::string ssid, int signal_dbm, std::string ip)
    : ip_(std::move(ip)),
      ap_(std::move(ssid), signal_dbm,
          DhcpServer("10.99.0", /*gateway=*/ip_, /*dns_server=*/ip_)),
      dns_(ip_, FakeDnsServer::Mode::kDos) {}

void Pineapple::PowerOn(Radio& radio, Network& net) {
  radio.AddAp(&ap_);
  net.Attach(ip_, &dns_);
}

void Pineapple::PowerOff(Radio& radio, Network& net) {
  radio.RemoveAp(&ap_);
  net.Detach(ip_);
}

}  // namespace connlab::net
