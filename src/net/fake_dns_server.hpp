// DNS servers for the simulated LAN.
//
// LegitDnsServer answers from a static zone — the well-behaved upstream.
//
// FakeDnsServer is the paper's "simple Python DNS server" (§III,
// Experimental Setup): on every query it "copies the relevant portions of
// the query from the target machine's packet, inserts the proper flags,
// and encodes the malicious code into the record response". Which
// malicious code depends on the configured payload (an exploit technique,
// a raw DoS name, or benign passthrough for staging).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/net/sim.hpp"

namespace connlab::net {

class LegitDnsServer : public Endpoint {
 public:
  explicit LegitDnsServer(std::string ip) : ip_(std::move(ip)) {}

  void AddRecord(const std::string& name, const std::string& ipv4);
  void OnDatagram(Network& net, const Datagram& dgram) override;

  [[nodiscard]] const std::string& ip() const noexcept { return ip_; }
  [[nodiscard]] std::uint64_t queries_served() const noexcept { return served_; }

 private:
  std::string ip_;
  std::map<std::string, std::string> zone_;
  std::uint64_t served_ = 0;
};

class FakeDnsServer : public Endpoint {
 public:
  enum class Mode { kBenign, kDos, kExploit };

  FakeDnsServer(std::string ip, Mode mode)
      : ip_(std::move(ip)), mode_(mode) {}

  /// Arms the server with an exploit generator + technique (kExploit mode).
  void Arm(exploit::TargetProfile profile, exploit::Technique technique) {
    generator_.emplace(std::move(profile));
    technique_ = technique;
    mode_ = Mode::kExploit;
  }
  void set_mode(Mode mode) noexcept { mode_ = mode; }

  void OnDatagram(Network& net, const Datagram& dgram) override;

  [[nodiscard]] const std::string& ip() const noexcept { return ip_; }
  [[nodiscard]] std::uint64_t queries_seen() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t payloads_sent() const noexcept { return sent_; }
  [[nodiscard]] const std::string& last_error() const noexcept { return last_error_; }

 private:
  std::string ip_;
  Mode mode_;
  std::optional<exploit::ExploitGenerator> generator_;
  exploit::Technique technique_ = exploit::Technique::kDosCrash;
  std::uint64_t seen_ = 0;
  std::uint64_t sent_ = 0;
  std::string last_error_;
};

}  // namespace connlab::net
