#include "src/net/dhcp.hpp"

namespace connlab::net {

DhcpServer::DhcpServer(std::string prefix, std::string gateway,
                       std::string dns_server, int pool_size)
    : prefix_(std::move(prefix)),
      gateway_(std::move(gateway)),
      dns_server_(std::move(dns_server)),
      pool_size_(pool_size) {}

util::Result<DhcpLease> DhcpServer::Offer(const std::string& client_id,
                                          std::uint64_t now) {
  ++offers_;
  auto it = leases_.find(client_id);
  if (it != leases_.end()) {
    // Renewal refreshes the options (a client re-associating to a rogue AP
    // picks up the malicious DNS even if it had a lease before).
    it->second.dns_server = dns_server_;
    it->second.gateway = gateway_;
    it->second.expires_at = lease_ttl_ == 0 ? 0 : now + lease_ttl_;
    return it->second;
  }
  DhcpLease lease;
  if (!free_ips_.empty()) {
    lease.ip = std::move(free_ips_.back());
    free_ips_.pop_back();
  } else if (next_host_ - 100 < pool_size_) {
    lease.ip = prefix_ + "." + std::to_string(next_host_++);
  } else {
    ++exhaustions_;
    return util::ResourceExhausted("DHCP pool exhausted");
  }
  lease.gateway = gateway_;
  lease.dns_server = dns_server_;
  lease.expires_at = lease_ttl_ == 0 ? 0 : now + lease_ttl_;
  leases_[client_id] = lease;
  return lease;
}

void DhcpServer::Release(const std::string& client_id) {
  auto it = leases_.find(client_id);
  if (it == leases_.end()) return;
  free_ips_.push_back(std::move(it->second.ip));
  leases_.erase(it);
}

std::size_t DhcpServer::ExpireLeases(std::uint64_t now) {
  std::size_t lapsed = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expires_at != 0 && it->second.expires_at <= now) {
      free_ips_.push_back(std::move(it->second.ip));
      it = leases_.erase(it);
      ++lapsed;
    } else {
      ++it;
    }
  }
  return lapsed;
}

}  // namespace connlab::net
