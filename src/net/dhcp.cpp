#include "src/net/dhcp.hpp"

namespace connlab::net {

DhcpServer::DhcpServer(std::string prefix, std::string gateway,
                       std::string dns_server, int pool_size)
    : prefix_(std::move(prefix)),
      gateway_(std::move(gateway)),
      dns_server_(std::move(dns_server)),
      pool_size_(pool_size) {}

util::Result<DhcpLease> DhcpServer::Offer(const std::string& client_id) {
  auto it = leases_.find(client_id);
  if (it != leases_.end()) {
    // Renewal refreshes the options (a client re-associating to a rogue AP
    // picks up the malicious DNS even if it had a lease before).
    it->second.dns_server = dns_server_;
    it->second.gateway = gateway_;
    return it->second;
  }
  if (next_host_ - 100 >= pool_size_) {
    return util::ResourceExhausted("DHCP pool exhausted");
  }
  DhcpLease lease;
  lease.ip = prefix_ + "." + std::to_string(next_host_++);
  lease.gateway = gateway_;
  lease.dns_server = dns_server_;
  leases_[client_id] = lease;
  return lease;
}

}  // namespace connlab::net
