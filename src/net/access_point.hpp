// Wireless access points and the radio environment. Association follows
// the rule the Pineapple abuses: a client joins the strongest AP
// broadcasting its preferred SSID, no questions asked ("the Wi-Fi
// Pineapple is able to broadcast a stronger signal than the legitimate
// access point, causing our targeted machine to switch its connection").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/net/dhcp.hpp"
#include "src/util/status.hpp"

namespace connlab::net {

class AccessPoint {
 public:
  AccessPoint(std::string ssid, int signal_dbm, DhcpServer dhcp)
      : ssid_(std::move(ssid)), signal_dbm_(signal_dbm), dhcp_(std::move(dhcp)) {}

  [[nodiscard]] const std::string& ssid() const noexcept { return ssid_; }
  [[nodiscard]] int signal_dbm() const noexcept { return signal_dbm_; }
  void set_signal_dbm(int dbm) noexcept { signal_dbm_ = dbm; }
  [[nodiscard]] DhcpServer& dhcp() noexcept { return dhcp_; }

 private:
  std::string ssid_;
  int signal_dbm_;
  DhcpServer dhcp_;
};

/// The over-the-air environment: which APs are currently beaconing.
class Radio {
 public:
  /// Registers a beaconing AP (not owned).
  void AddAp(AccessPoint* ap);
  void RemoveAp(AccessPoint* ap);

  /// Strongest AP broadcasting `ssid` (the association rule).
  [[nodiscard]] util::Result<AccessPoint*> StrongestFor(const std::string& ssid) const;

  [[nodiscard]] std::vector<AccessPoint*> Scan() const { return aps_; }

 private:
  std::vector<AccessPoint*> aps_;
};

}  // namespace connlab::net
