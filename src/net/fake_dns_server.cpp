#include "src/net/fake_dns_server.hpp"

#include "src/dns/record.hpp"
#include "src/util/log.hpp"

namespace connlab::net {

void LegitDnsServer::AddRecord(const std::string& name, const std::string& ipv4) {
  zone_[name] = ipv4;
}

void LegitDnsServer::OnDatagram(Network& net, const Datagram& dgram) {
  auto query = dns::Decode(dgram.payload);
  if (!query.ok() || query.value().header.qr ||
      query.value().questions.size() != 1) {
    return;  // silently ignore junk, like a real resolver
  }
  dns::Message response = dns::Message::ResponseFor(query.value());
  auto it = zone_.find(query.value().questions[0].name);
  if (it != zone_.end()) {
    response.answers.push_back(
        dns::MakeA(query.value().questions[0].name, it->second, 300));
  } else {
    response.header.rcode = dns::Rcode::kNXDomain;
  }
  auto wire = dns::Encode(response);
  if (!wire.ok()) return;
  ++served_;
  (void)net.Send(Datagram{ip_, kDnsPort, dgram.src_ip, dgram.src_port,
                          std::move(wire).value()});
}

void FakeDnsServer::OnDatagram(Network& net, const Datagram& dgram) {
  auto query = dns::Decode(dgram.payload);
  if (!query.ok() || query.value().header.qr ||
      query.value().questions.size() != 1) {
    return;
  }
  ++seen_;

  util::Result<util::Bytes> wire = util::InvalidArgument("unset");
  switch (mode_) {
    case Mode::kBenign: {
      dns::Message response = dns::Message::ResponseFor(query.value());
      response.answers.push_back(
          dns::MakeA(query.value().questions[0].name, "10.66.66.66", 60));
      wire = dns::Encode(response);
      break;
    }
    case Mode::kDos: {
      auto labels = dns::JunkLabels(4096);
      if (!labels.ok()) {
        last_error_ = labels.status().ToString();
        return;
      }
      wire = dns::Encode(
          dns::MaliciousAResponse(query.value(), std::move(labels).value()));
      break;
    }
    case Mode::kExploit: {
      if (!generator_.has_value()) {
        last_error_ = "exploit mode without a generator";
        return;
      }
      auto response = generator_->BuildResponse(query.value(), technique_);
      if (!response.ok()) {
        last_error_ = response.status().ToString();
        return;
      }
      wire = dns::Encode(response.value());
      break;
    }
  }
  if (!wire.ok()) {
    last_error_ = wire.status().ToString();
    return;
  }
  ++sent_;
  CONNLAB_INFO("fakedns") << "answering " << dns::Summary(query.value())
                          << " with " << wire.value().size() << " bytes";
  (void)net.Send(Datagram{ip_, kDnsPort, dgram.src_ip, dgram.src_port,
                          std::move(wire).value()});
}

}  // namespace connlab::net
