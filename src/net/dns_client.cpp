#include "src/net/dns_client.hpp"

#include <cstdio>

#include "src/dns/message.hpp"
#include "src/util/log.hpp"

namespace connlab::net {

VictimDevice::VictimDevice(loader::System& sys, connman::Version version,
                           std::string ssid, std::string hostname)
    : proxy_(sys, version), ssid_(std::move(ssid)), hostname_(std::move(hostname)) {}

util::Status VictimDevice::JoinWifi(Radio& radio, Network& net) {
  CONNLAB_ASSIGN_OR_RETURN(AccessPoint * ap, radio.StrongestFor(ssid_));
  CONNLAB_ASSIGN_OR_RETURN(DhcpLease lease, ap->dhcp().Offer(hostname_));
  if (!lease_.ip.empty() && lease_.ip != lease.ip) {
    net.Detach(lease_.ip);
  }
  lease_ = std::move(lease);
  char dbg[64];
  std::snprintf(dbg, sizeof(dbg), "%s @ %d dBm", ap->ssid().c_str(),
                ap->signal_dbm());
  ap_debug_ = dbg;
  net.Attach(lease_.ip, this);
  CONNLAB_INFO("victim") << "associated to " << ap_debug_ << ", ip "
                         << lease_.ip << ", dns " << lease_.dns_server;
  return util::OkStatus();
}

util::Result<std::uint16_t> VictimDevice::Lookup(Network& net,
                                                 const std::string& hostname) {
  if (lease_.ip.empty()) return util::FailedPrecondition("not on a network");
  const std::uint16_t txid = next_txid_++;
  dns::Message query = dns::Message::Query(txid, hostname);
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes wire, dns::Encode(query));
  // The local app queries the dnsproxy on localhost; the proxy registers
  // the pending transaction and forwards upstream.
  CONNLAB_ASSIGN_OR_RETURN(util::Bytes upstream, proxy_.AcceptClientQuery(wire));
  CONNLAB_RETURN_IF_ERROR(net.Send(Datagram{
      lease_.ip, next_port_++, lease_.dns_server, kDnsPort, std::move(upstream)}));
  return txid;
}

void VictimDevice::OnDatagram(Network& net, const Datagram& dgram) {
  (void)net;
  if (dgram.src_port != kDnsPort) return;  // only upstream DNS expected
  outcomes_.push_back(proxy_.HandleServerResponse(dgram.payload));
  CONNLAB_INFO("victim") << "proxy outcome: " << outcomes_.back().ToString();
}

bool VictimDevice::compromised() const noexcept {
  for (const auto& outcome : outcomes_) {
    if (outcome.kind == connman::ProxyOutcome::Kind::kShell) return true;
  }
  return false;
}

bool VictimDevice::crashed() const noexcept {
  for (const auto& outcome : outcomes_) {
    if (outcome.kind == connman::ProxyOutcome::Kind::kCrash) return true;
  }
  return false;
}

}  // namespace connlab::net
