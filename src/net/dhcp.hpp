// Minimal DHCP model: an address pool plus the two options the experiment
// cares about — gateway and DNS server. This is the knob the Wi-Fi
// Pineapple turns: "configure it to utilize DHCP to assign our malicious
// DNS server to clients" (§III-D).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/util/status.hpp"

namespace connlab::net {

struct DhcpLease {
  std::string ip;
  std::string gateway;
  std::string dns_server;
};

class DhcpServer {
 public:
  /// Pool hands out prefix.100, prefix.101, ... (prefix like "192.168.1").
  DhcpServer(std::string prefix, std::string gateway, std::string dns_server,
             int pool_size = 100);

  /// Offers (or renews) a lease for a client identifier (MAC/hostname).
  util::Result<DhcpLease> Offer(const std::string& client_id);

  void set_dns_server(std::string dns) { dns_server_ = std::move(dns); }
  [[nodiscard]] const std::string& dns_server() const noexcept {
    return dns_server_;
  }
  [[nodiscard]] std::size_t active_leases() const noexcept {
    return leases_.size();
  }

 private:
  std::string prefix_;
  std::string gateway_;
  std::string dns_server_;
  int pool_size_;
  int next_host_ = 100;
  std::map<std::string, DhcpLease> leases_;
};

}  // namespace connlab::net
