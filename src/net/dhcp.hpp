// Minimal DHCP model: an address pool plus the two options the experiment
// cares about — gateway and DNS server. This is the knob the Wi-Fi
// Pineapple turns: "configure it to utilize DHCP to assign our malicious
// DNS server to clients" (§III-D).
//
// Fleet-scale additions: leases carry an expiry deadline (virtual time),
// Release() returns an address to a free list so a churning population can
// cycle through a bounded pool, and a released address is handed to the
// next client that asks — the renumbering case the churn tests cover.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.hpp"

namespace connlab::net {

struct DhcpLease {
  std::string ip;
  std::string gateway;
  std::string dns_server;
  /// Virtual time at which the lease lapses (0 = no expiry configured).
  std::uint64_t expires_at = 0;
};

class DhcpServer {
 public:
  /// Pool hands out prefix.100, prefix.101, ... (prefix like "192.168.1").
  DhcpServer(std::string prefix, std::string gateway, std::string dns_server,
             int pool_size = 100);

  /// Offers (or renews) a lease for a client identifier (MAC/hostname).
  /// `now` stamps expires_at when a lease TTL is configured.
  util::Result<DhcpLease> Offer(const std::string& client_id,
                                std::uint64_t now = 0);

  /// Releases a client's lease, returning its address to the pool. The
  /// address will be re-offered to the *next* client that needs one, so a
  /// returning client usually renumbers. No-op for unknown clients.
  void Release(const std::string& client_id);

  /// Expires every lease with expires_at <= now; returns how many lapsed.
  std::size_t ExpireLeases(std::uint64_t now);

  /// Lease lifetime in virtual time units; 0 (the default) never expires.
  void set_lease_ttl(std::uint64_t ttl) noexcept { lease_ttl_ = ttl; }
  [[nodiscard]] std::uint64_t lease_ttl() const noexcept { return lease_ttl_; }

  void set_dns_server(std::string dns) { dns_server_ = std::move(dns); }
  [[nodiscard]] const std::string& dns_server() const noexcept {
    return dns_server_;
  }
  [[nodiscard]] std::size_t active_leases() const noexcept {
    return leases_.size();
  }
  [[nodiscard]] std::uint64_t offers() const noexcept { return offers_; }
  [[nodiscard]] std::uint64_t exhaustions() const noexcept {
    return exhaustions_;
  }

 private:
  std::string prefix_;
  std::string gateway_;
  std::string dns_server_;
  int pool_size_;
  int next_host_ = 100;
  std::uint64_t lease_ttl_ = 0;
  std::uint64_t offers_ = 0;
  std::uint64_t exhaustions_ = 0;
  std::vector<std::string> free_ips_;  // released addresses, reused LIFO
  std::map<std::string, DhcpLease> leases_;
};

}  // namespace connlab::net
