#include "src/net/resolver.hpp"

#include "src/dns/record.hpp"
#include "src/util/log.hpp"

namespace connlab::net {

void ForwardingResolver::AddRecord(const std::string& name,
                                   const std::string& ipv4) {
  zone_[name] = ipv4;
}

void ForwardingResolver::AddDelegation(const std::string& suffix,
                                       const std::string& server_ip) {
  delegations_[suffix] = server_ip;
}

void ForwardingResolver::OnDatagram(Network& net, const Datagram& dgram) {
  // A response coming back from a delegated server? Relay it verbatim to
  // the waiting client — a plain forwarder does not re-validate the answer
  // section (that laxness is what the lure attack rides on).
  if (dgram.payload.size() >= 2) {
    const std::uint16_t id = static_cast<std::uint16_t>(
        (dgram.payload[0] << 8) | dgram.payload[1]);
    const bool is_response =
        dgram.payload.size() >= 3 && (dgram.payload[2] & 0x80) != 0;
    auto pending = pending_.find(id);
    if (is_response && pending != pending_.end()) {
      ++relayed_;
      (void)net.Send(Datagram{ip_, kDnsPort, pending->second.client_ip,
                              pending->second.client_port, dgram.payload});
      pending_.erase(pending);
      return;
    }
  }

  auto query = dns::Decode(dgram.payload);
  if (!query.ok() || query.value().header.qr ||
      query.value().questions.size() != 1) {
    return;
  }
  const std::string& name = query.value().questions[0].name;

  // Delegated? Forward the original packet verbatim upstream.
  for (const auto& [suffix, server_ip] : delegations_) {
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      pending_[query.value().header.id] = {dgram.src_ip, dgram.src_port};
      ++forwarded_;
      CONNLAB_INFO("resolver") << "forwarding " << name << " to " << server_ip;
      (void)net.Send(Datagram{ip_, kDnsPort, server_ip, kDnsPort, dgram.payload});
      return;
    }
  }

  // Otherwise answer authoritatively.
  dns::Message response = dns::Message::ResponseFor(query.value());
  auto it = zone_.find(name);
  if (it != zone_.end()) {
    response.answers.push_back(dns::MakeA(name, it->second, 300));
  } else {
    response.header.rcode = dns::Rcode::kNXDomain;
  }
  auto wire = dns::Encode(response);
  if (!wire.ok()) return;
  (void)net.Send(Datagram{ip_, kDnsPort, dgram.src_ip, dgram.src_port,
                          std::move(wire).value()});
}

}  // namespace connlab::net
