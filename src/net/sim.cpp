#include "src/net/sim.hpp"

#include <cstdio>

#include "src/obs/obs.hpp"

namespace connlab::net {

std::string Datagram::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s:%u -> %s:%u (%zu bytes)",
                src_ip.c_str(), src_port, dst_ip.c_str(), dst_port,
                payload.size());
  return buf;
}

void Network::Attach(const std::string& ip, Endpoint* endpoint) {
  endpoints_[ip] = endpoint;
}

void Network::Detach(const std::string& ip) { endpoints_.erase(ip); }

void Network::EnableCapture(std::size_t max_datagrams) {
  capture_ = true;
  capture_cap_ = max_datagrams;
  while (log_.size() > capture_cap_) log_.pop_front();
}

util::Status Network::Send(Datagram dgram) {
  return Schedule(std::move(dgram), now_ + latency_);
}

util::Status Network::SendAt(Datagram dgram, SimTime deliver_at) {
  return Schedule(std::move(dgram), deliver_at < now_ ? now_ : deliver_at);
}

util::Status Network::Schedule(Datagram dgram, SimTime deliver_at) {
  if (dgram.dst_ip.empty()) return util::InvalidArgument("no destination");
  OBS_COUNT("net.datagrams");
  if (dgram.dst_port == kDnsPort) OBS_COUNT("net.dns_queries");
  if (dgram.src_port == kDnsPort) OBS_COUNT("net.dns_responses");
  if (capture_) {
    log_.push_back(dgram);
    while (log_.size() > capture_cap_) log_.pop_front();
  }
  schedule_.push(Scheduled{deliver_at, next_seq_++, std::move(dgram)});
  return util::OkStatus();
}

void Network::DeliverOne(Scheduled item) {
  if (item.deliver_at > now_) now_ = item.deliver_at;
  auto it = endpoints_.find(item.dgram.dst_ip);
  if (it == endpoints_.end() || it->second == nullptr) {
    ++dropped_;
    OBS_COUNT("net.dropped");
    return;
  }
  ++delivered_;
  OBS_COUNT("net.delivered");
  it->second->OnDatagram(*this, item.dgram);
}

int Network::DeliverAll(int max) {
  int count = 0;
  while (!schedule_.empty() && count < max) {
    // Move out from under the heap before popping; safe because the slot is
    // removed immediately and never compared again.
    Scheduled item = std::move(const_cast<Scheduled&>(schedule_.top()));
    schedule_.pop();
    ++count;
    DeliverOne(std::move(item));
  }
  return count;
}

int Network::DeliverUntil(SimTime deadline, int max) {
  int count = 0;
  while (!schedule_.empty() && count < max &&
         schedule_.top().deliver_at <= deadline) {
    Scheduled item = std::move(const_cast<Scheduled&>(schedule_.top()));
    schedule_.pop();
    ++count;
    DeliverOne(std::move(item));
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace connlab::net
