#include "src/net/sim.hpp"

#include <cstdio>

#include "src/obs/obs.hpp"

namespace connlab::net {

std::string Datagram::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s:%u -> %s:%u (%zu bytes)",
                src_ip.c_str(), src_port, dst_ip.c_str(), dst_port,
                payload.size());
  return buf;
}

void Network::Attach(const std::string& ip, Endpoint* endpoint) {
  endpoints_[ip] = endpoint;
}

void Network::Detach(const std::string& ip) { endpoints_.erase(ip); }

util::Status Network::Send(Datagram dgram) {
  if (dgram.dst_ip.empty()) return util::InvalidArgument("no destination");
  OBS_COUNT("net.datagrams");
  if (dgram.dst_port == kDnsPort) OBS_COUNT("net.dns_queries");
  if (dgram.src_port == kDnsPort) OBS_COUNT("net.dns_responses");
  log_.push_back(dgram);
  queue_.push_back(std::move(dgram));
  return util::OkStatus();
}

int Network::DeliverAll(int max) {
  int count = 0;
  while (!queue_.empty() && count < max) {
    Datagram dgram = std::move(queue_.front());
    queue_.pop_front();
    ++count;
    auto it = endpoints_.find(dgram.dst_ip);
    if (it == endpoints_.end() || it->second == nullptr) {
      ++dropped_;
      OBS_COUNT("net.dropped");
      continue;
    }
    ++delivered_;
    OBS_COUNT("net.delivered");
    it->second->OnDatagram(*this, dgram);
  }
  return count;
}

}  // namespace connlab::net
