// A forwarding resolver: the home network's legitimate DNS service that
// answers from its own zone but *forwards* queries for delegated domains
// to their authoritative servers — verbatim, as simple CPE forwarders do.
//
// This is the paper's second delivery class (§III-D): "an attacker can use
// a malicious domain and lure a target user to their site, then use the
// domain's DNS server to respond to queries with the exploit code." No
// rogue AP needed — the exploit rides the legitimate resolution chain.
#pragma once

#include <map>
#include <string>

#include "src/dns/message.hpp"
#include "src/net/sim.hpp"

namespace connlab::net {

class ForwardingResolver : public Endpoint {
 public:
  explicit ForwardingResolver(std::string ip) : ip_(std::move(ip)) {}

  /// Authoritative local data.
  void AddRecord(const std::string& name, const std::string& ipv4);
  /// Queries for names ending in `suffix` are forwarded to `server_ip`.
  void AddDelegation(const std::string& suffix, const std::string& server_ip);

  void OnDatagram(Network& net, const Datagram& dgram) override;

  [[nodiscard]] const std::string& ip() const noexcept { return ip_; }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::uint64_t relayed() const noexcept { return relayed_; }

 private:
  struct PendingForward {
    std::string client_ip;
    std::uint16_t client_port = 0;
  };

  std::string ip_;
  std::map<std::string, std::string> zone_;
  std::map<std::string, std::string> delegations_;  // suffix -> server ip
  std::map<std::uint16_t, PendingForward> pending_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t relayed_ = 0;
};

}  // namespace connlab::net
