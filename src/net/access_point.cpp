#include "src/net/access_point.hpp"

#include <algorithm>

namespace connlab::net {

void Radio::AddAp(AccessPoint* ap) {
  if (std::find(aps_.begin(), aps_.end(), ap) == aps_.end()) {
    aps_.push_back(ap);
  }
}

void Radio::RemoveAp(AccessPoint* ap) {
  aps_.erase(std::remove(aps_.begin(), aps_.end(), ap), aps_.end());
}

util::Result<AccessPoint*> Radio::StrongestFor(const std::string& ssid) const {
  AccessPoint* best = nullptr;
  for (AccessPoint* ap : aps_) {
    if (ap->ssid() != ssid) continue;
    if (best == nullptr || ap->signal_dbm() > best->signal_dbm()) best = ap;
  }
  if (best == nullptr) return util::NotFound("no AP beacons ssid " + ssid);
  return best;
}

}  // namespace connlab::net
