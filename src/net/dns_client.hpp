// The victim IoT device: a wireless client whose firmware runs the
// simulated Connman. Applications on the device resolve names through the
// local dnsproxy; the proxy forwards to whatever DNS server DHCP last
// assigned — the property the Pineapple attack chain rides on.
#pragma once

#include <string>
#include <vector>

#include "src/connman/dnsproxy.hpp"
#include "src/net/access_point.hpp"
#include "src/net/sim.hpp"

namespace connlab::net {

class VictimDevice : public Endpoint {
 public:
  /// `sys` hosts the device firmware (Connman); `ssid` is the network the
  /// device is provisioned for.
  VictimDevice(loader::System& sys, connman::Version version, std::string ssid,
               std::string hostname = "iot-device");

  /// Associates to the strongest AP beaconing the preferred SSID, runs
  /// DHCP, and attaches to the network at the leased address. Safe to call
  /// again after the radio environment changes (roaming).
  util::Status JoinWifi(Radio& radio, Network& net);

  /// An application on the device resolves `hostname`: the query goes
  /// through the local dnsproxy to the DHCP-assigned DNS server.
  util::Result<std::uint16_t> Lookup(Network& net, const std::string& hostname);

  void OnDatagram(Network& net, const Datagram& dgram) override;

  [[nodiscard]] connman::DnsProxy& proxy() noexcept { return proxy_; }
  [[nodiscard]] const DhcpLease& lease() const noexcept { return lease_; }
  [[nodiscard]] const std::string& associated_ssid_owner() const noexcept {
    return ap_debug_;
  }
  /// Outcomes of every upstream response the proxy has processed.
  [[nodiscard]] const std::vector<connman::ProxyOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  /// True once any processed response spawned a shell (device compromised).
  [[nodiscard]] bool compromised() const noexcept;
  /// True once any processed response crashed the daemon.
  [[nodiscard]] bool crashed() const noexcept;

 private:
  connman::DnsProxy proxy_;
  std::string ssid_;
  std::string hostname_;
  DhcpLease lease_;
  std::string ap_debug_;
  std::uint16_t next_txid_ = 0x1000;
  std::uint16_t next_port_ = 40000;
  std::vector<connman::ProxyOutcome> outcomes_;
};

}  // namespace connlab::net
