// VARM encoding: ARMv7-flavoured fixed-width synthetic ISA.
//
// Every instruction is exactly 4 bytes: {opcode, b1, b2, b3}. There is no
// RET: functions return with `bx lr` or `pop {..., pc}`, which is what makes
// ARM-style ROP chains (pop-gadgets + `blx rN`) necessary, mirroring the
// paper's §III-B2 and §III-C2. There is no single-byte NOP either — the
// conventional NOP is `mov r1, r1` (cf. the paper's 4-byte NOP).
//
//   0x00 hlt
//   0x01 mov rd, rm            {01, rd, rm, 0}
//   0x02 movw rd, #imm16       {02, rd, lo, hi}   rd = imm16 (zero-extended)
//   0x03 movt rd, #imm16       {03, rd, lo, hi}   rd[31:16] = imm16
//   0x04 ldr rd, [rn, #imm8]   {04, rd, rn, imm8}
//   0x05 str rd, [rn, #imm8]   {05, rd, rn, imm8}
//   0x06 push {mask}           {06, 0, maskLo, maskHi}
//   0x07 pop {mask}            {07, 0, maskLo, maskHi}  bit15 = pc
//   0x08 bl  #simm24           {08, o0, o1, o2}   word offset from next pc
//   0x09 bx  rm                {09, rm, 0, 0}
//   0x0A blx rm                {0A, rm, 0, 0}     lr = next pc
//   0x0B b   #simm16           {0B, 0, lo, hi}    word offset from next pc
//   0x0C ldrl rd, [pc,#simm16] {0C, rd, lo, hi}   literal pool load
//   0x0D ldri rd, [rm]         {0D, rd, rm, 0}
//   0x0E add rd, rn, #imm8     {0E, rd, rn, imm8}
//   0x0F sub rd, rn, #imm8     {0F, rd, rn, imm8}
//   0x10 syscall               {10, 0, 0, 0}      number in r7, args r0-r2
//   0x11 cmp rd, #imm8         {11, rd, imm8, 0}
//   0x12 beq #simm16           {12, 0, lo, hi}
//   0x13 bne #simm16           {13, 0, lo, hi}
//   0x14 mvn rd, rm            {14, rd, rm, 0}
//   0x15 add rd, rn, rm        {15, rd, rn, rm}
//
// Branch offsets are in *words* relative to the next instruction's pc.
// LDRL offsets are in bytes relative to the next instruction's pc.
#pragma once

#include "src/isa/isa.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::isa::varm {

inline constexpr std::uint8_t kOpHlt = 0x00;
inline constexpr std::uint8_t kOpMovReg = 0x01;
inline constexpr std::uint8_t kOpMovW = 0x02;
inline constexpr std::uint8_t kOpMovT = 0x03;
inline constexpr std::uint8_t kOpLdr = 0x04;
inline constexpr std::uint8_t kOpStr = 0x05;
inline constexpr std::uint8_t kOpPush = 0x06;
inline constexpr std::uint8_t kOpPop = 0x07;
inline constexpr std::uint8_t kOpBl = 0x08;
inline constexpr std::uint8_t kOpBx = 0x09;
inline constexpr std::uint8_t kOpBlx = 0x0A;
inline constexpr std::uint8_t kOpB = 0x0B;
inline constexpr std::uint8_t kOpLdrLit = 0x0C;
inline constexpr std::uint8_t kOpLdrInd = 0x0D;
inline constexpr std::uint8_t kOpAddImm = 0x0E;
inline constexpr std::uint8_t kOpSubImm = 0x0F;
inline constexpr std::uint8_t kOpSyscall = 0x10;
inline constexpr std::uint8_t kOpCmpImm = 0x11;
inline constexpr std::uint8_t kOpBeq = 0x12;
inline constexpr std::uint8_t kOpBne = 0x13;
inline constexpr std::uint8_t kOpMvn = 0x14;
inline constexpr std::uint8_t kOpAddReg = 0x15;
inline constexpr std::uint8_t kOpLdrb = 0x16;
inline constexpr std::uint8_t kOpStrb = 0x17;

/// Decodes the 4-byte word at data[offset]. Malformed on invalid opcode,
/// bad register, or truncation.
util::Result<Instr> Decode(util::ByteSpan data, std::size_t offset);

/// Register-list mask helper: Mask({kR0, kR1, kPC}).
std::uint16_t Mask(std::initializer_list<std::uint8_t> regs) noexcept;

void EncHlt(util::ByteWriter& w);
void EncMovReg(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rm);
void EncNop(util::ByteWriter& w);  // mov r1, r1
void EncMovW(util::ByteWriter& w, std::uint8_t rd, std::uint16_t imm);
void EncMovT(util::ByteWriter& w, std::uint8_t rd, std::uint16_t imm);
/// movw+movt pair loading a full 32-bit constant (8 bytes).
void EncMovImm32(util::ByteWriter& w, std::uint8_t rd, std::uint32_t imm);
void EncLdr(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off);
void EncStr(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off);
void EncPush(util::ByteWriter& w, std::uint16_t mask);
void EncPop(util::ByteWriter& w, std::uint16_t mask);
void EncBl(util::ByteWriter& w, std::int32_t word_offset);
void EncBx(util::ByteWriter& w, std::uint8_t rm);
void EncBlx(util::ByteWriter& w, std::uint8_t rm);
void EncB(util::ByteWriter& w, std::int16_t word_offset);
void EncLdrLit(util::ByteWriter& w, std::uint8_t rd, std::int16_t byte_offset);
void EncLdrInd(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rm);
void EncAddImm(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t imm);
void EncSubImm(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t imm);
void EncSyscall(util::ByteWriter& w);
void EncCmpImm(util::ByteWriter& w, std::uint8_t rd, std::uint8_t imm);
void EncBeq(util::ByteWriter& w, std::int16_t word_offset);
void EncBne(util::ByteWriter& w, std::int16_t word_offset);
void EncMvn(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rm);
void EncAddReg(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t rm);
void EncLdrb(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off);
void EncStrb(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off);

}  // namespace connlab::isa::varm
