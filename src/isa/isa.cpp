#include "src/isa/isa.hpp"

#include <cstdio>

namespace connlab::isa {

std::string_view ArchName(Arch arch) noexcept {
  switch (arch) {
    case Arch::kVX86: return "vx86";
    case Arch::kVARM: return "varm";
  }
  return "?";
}

std::string_view VX86RegName(std::uint8_t reg) noexcept {
  static constexpr std::string_view kNames[] = {"eax", "ecx", "edx", "ebx",
                                                "esp", "ebp", "esi", "edi"};
  return reg < 8 ? kNames[reg] : "r?";
}

std::string_view VARMRegName(std::uint8_t reg) noexcept {
  static constexpr std::string_view kNames[] = {
      "r0", "r1", "r2",  "r3",  "r4",  "r5", "r6", "r7",
      "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc"};
  return reg < 16 ? kNames[reg] : "r?";
}

std::string_view OpName(Op op) noexcept {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kMovImm: return "mov";
    case Op::kMovReg: return "mov";
    case Op::kLoad: return "ldr";
    case Op::kStore: return "str";
    case Op::kLoadByte: return "ldrb";
    case Op::kStoreByte: return "strb";
    case Op::kAddImm: return "add";
    case Op::kSubImm: return "sub";
    case Op::kAddReg: return "add";
    case Op::kXorReg: return "xor";
    case Op::kMvn: return "mvn";
    case Op::kCmpImm: return "cmp";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kJnz: return "jnz";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kJmpInd: return "jmp*";
    case Op::kPush: return "push";
    case Op::kPushImm: return "push";
    case Op::kPop: return "pop";
    case Op::kMovT: return "movt";
    case Op::kLdrLit: return "ldrl";
    case Op::kLdrInd: return "ldri";
    case Op::kBl: return "bl";
    case Op::kBlx: return "blx";
    case Op::kBx: return "bx";
    case Op::kSyscall: return "syscall";
    case Op::kHlt: return "hlt";
  }
  return "?";
}

namespace {

std::string RegListString(std::uint16_t mask) {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < 16; ++i) {
    if ((mask >> i) & 1) {
      if (!first) out += ", ";
      out += std::string(VARMRegName(static_cast<std::uint8_t>(i)));
      first = false;
    }
  }
  out += "}";
  return out;
}

std::string Hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

}  // namespace

std::string Instr::ToString(Arch arch) const {
  const auto reg = [arch](std::uint8_t r) {
    return std::string(arch == Arch::kVX86 ? VX86RegName(r) : VARMRegName(r));
  };
  const std::string name(OpName(op));
  switch (op) {
    case Op::kNop:
    case Op::kRet:
    case Op::kSyscall:
    case Op::kHlt:
      return name;
    case Op::kMovImm:
    case Op::kMovT:
    case Op::kAddImm:
    case Op::kSubImm:
    case Op::kCmpImm:
      return name + " " + reg(ra) + ", #" + Hex32(imm);
    case Op::kMovReg:
    case Op::kXorReg:
    case Op::kMvn:
    case Op::kBlx:
    case Op::kBx:
      if (op == Op::kBlx || op == Op::kBx) return name + " " + reg(ra);
      return name + " " + reg(ra) + ", " + reg(rb);
    case Op::kAddReg:
      return name + " " + reg(ra) + ", " + reg(rb) + ", " + reg(rc);
    case Op::kLoad:
    case Op::kStore:
    case Op::kLoadByte:
    case Op::kStoreByte:
      return name + " " + reg(ra) + ", [" + reg(rb) + ", #" + Hex32(imm) + "]";
    case Op::kLdrLit:
      return name + " " + reg(ra) + ", [pc, #" +
             std::to_string(static_cast<std::int32_t>(imm)) + "]";
    case Op::kLdrInd:
      return name + " " + reg(ra) + ", [" + reg(rb) + "]";
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kCall:
    case Op::kBl:
      if (arch == Arch::kVARM) {
        return name + " pc" +
               (static_cast<std::int32_t>(imm) >= 0 ? "+" : "") +
               std::to_string(static_cast<std::int32_t>(imm));
      }
      return name + " " + Hex32(imm);
    case Op::kJmpInd:
      return "jmp [" + Hex32(imm) + "]";
    case Op::kPushImm:
      return name + " #" + Hex32(imm);
    case Op::kPush:
    case Op::kPop:
      if (arch == Arch::kVARM) return name + " " + RegListString(reg_mask);
      return name + " " + reg(ra);
  }
  return name;
}

}  // namespace connlab::isa
