// VX86 encoding: x86-flavoured variable-length synthetic ISA.
//
// One opcode byte followed by operands; immediates are little-endian 32-bit.
// The single-byte NOP (0x90) is what makes classic NOP sleds work, exactly
// as the paper relies on for its x86 code-injection exploit.
//
//   0x90 nop                      1 byte
//   0x01 push imm32               5
//   0x02 push reg                 2
//   0x03 pop reg                  2
//   0x04 mov reg, imm32           6
//   0x05 mov ra, rb               3
//   0x06 ldr ra, [rb + disp32]    7
//   0x07 str ra, [rb + disp32]    7
//   0x08 add reg, imm32           6
//   0x09 sub reg, imm32           6
//   0x0A call abs32               5   (pushes return address)
//   0x0B ret                      1   (pops pc — the ROP pivot)
//   0x0C jmp abs32                5
//   0x0D jmp [abs32]              5   (indirect through memory: PLT stubs)
//   0x0E syscall                  1   (number in eax, args ebx/ecx/edx)
//   0x0F hlt                      1
//   0x10 xor ra, rb               3
//   0x11 cmp reg, imm32           6   (sets ZF)
//   0x12 jz abs32                 5
//   0x13 jnz abs32                5
//   0x15 add ra, rb, rc           4
#pragma once

#include "src/isa/isa.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::isa::vx86 {

inline constexpr std::uint8_t kOpNop = 0x90;
inline constexpr std::uint8_t kOpPushImm = 0x01;
inline constexpr std::uint8_t kOpPushReg = 0x02;
inline constexpr std::uint8_t kOpPopReg = 0x03;
inline constexpr std::uint8_t kOpMovImm = 0x04;
inline constexpr std::uint8_t kOpMovReg = 0x05;
inline constexpr std::uint8_t kOpLoad = 0x06;
inline constexpr std::uint8_t kOpStore = 0x07;
inline constexpr std::uint8_t kOpAddImm = 0x08;
inline constexpr std::uint8_t kOpSubImm = 0x09;
inline constexpr std::uint8_t kOpCall = 0x0A;
inline constexpr std::uint8_t kOpRet = 0x0B;
inline constexpr std::uint8_t kOpJmp = 0x0C;
inline constexpr std::uint8_t kOpJmpInd = 0x0D;
inline constexpr std::uint8_t kOpSyscall = 0x0E;
inline constexpr std::uint8_t kOpHlt = 0x0F;
inline constexpr std::uint8_t kOpXorReg = 0x10;
inline constexpr std::uint8_t kOpCmpImm = 0x11;
inline constexpr std::uint8_t kOpJz = 0x12;
inline constexpr std::uint8_t kOpJnz = 0x13;
inline constexpr std::uint8_t kOpAddReg = 0x15;
inline constexpr std::uint8_t kOpLoadByte = 0x16;
inline constexpr std::uint8_t kOpStoreByte = 0x17;

/// Encoded length of the instruction whose first byte is `opcode`;
/// 0 if the byte is not a valid VX86 opcode.
std::uint8_t InstrLength(std::uint8_t opcode) noexcept;

/// Decodes one instruction starting at data[offset]. Malformed on invalid
/// opcode or truncation.
util::Result<Instr> Decode(util::ByteSpan data, std::size_t offset);

/// Raw encoders (used by the Assembler).
void EncNop(util::ByteWriter& w);
void EncPushImm(util::ByteWriter& w, std::uint32_t imm);
void EncPushReg(util::ByteWriter& w, std::uint8_t reg);
void EncPopReg(util::ByteWriter& w, std::uint8_t reg);
void EncMovImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm);
void EncMovReg(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb);
void EncLoad(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb, std::uint32_t disp);
void EncStore(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb, std::uint32_t disp);
void EncAddImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm);
void EncSubImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm);
void EncCall(util::ByteWriter& w, std::uint32_t target);
void EncRet(util::ByteWriter& w);
void EncJmp(util::ByteWriter& w, std::uint32_t target);
void EncJmpInd(util::ByteWriter& w, std::uint32_t slot);
void EncSyscall(util::ByteWriter& w);
void EncHlt(util::ByteWriter& w);
void EncXorReg(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb);
void EncCmpImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm);
void EncJz(util::ByteWriter& w, std::uint32_t target);
void EncJnz(util::ByteWriter& w, std::uint32_t target);
void EncAddReg(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb, std::uint8_t rc);
void EncLoadByte(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb, std::uint32_t disp);
void EncStoreByte(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb, std::uint32_t disp);

}  // namespace connlab::isa::vx86
