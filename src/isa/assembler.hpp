// Two-pass mini assembler used by the loader to build guest binaries
// (the simulated Connman image, libc images, adapted targets).
//
// The Assembler tracks the current guest address, supports named labels with
// forward references (fixed up in Finish()), and raw data directives. The
// per-ISA instruction encoders live in vx86.hpp / varm.hpp; callers mix them
// with the label-aware branch helpers here.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/isa/varm.hpp"
#include "src/isa/vx86.hpp"
#include "src/mem/segment.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::isa {

class Assembler {
 public:
  Assembler(Arch arch, mem::GuestAddr base) : arch_(arch), base_(base) {}

  [[nodiscard]] Arch arch() const noexcept { return arch_; }
  [[nodiscard]] mem::GuestAddr base() const noexcept { return base_; }
  /// Guest address of the next byte to be emitted.
  [[nodiscard]] mem::GuestAddr addr() const noexcept {
    return base_ + static_cast<mem::GuestAddr>(w_.size());
  }

  /// Direct access for the per-ISA encoders: vx86::EncMovImm(a.w(), ...).
  util::ByteWriter& w() noexcept { return w_; }

  // --- Labels --------------------------------------------------------------
  /// Defines `name` at the current address. Re-definition is an error
  /// surfaced by Finish().
  void Label(const std::string& name);
  [[nodiscard]] util::Result<mem::GuestAddr> LabelAddr(const std::string& name) const;

  // --- Label-aware control flow (emit + record fixup) ------------------------
  // VX86 absolute-target forms:
  void CallLabel(const std::string& name);
  void JmpLabel(const std::string& name);
  void JzLabel(const std::string& name);
  void JnzLabel(const std::string& name);
  /// push imm32 where imm is a label address (e.g. pushing a string ptr).
  void PushLabelAddr(const std::string& name);
  /// mov reg, label-address.
  void MovLabelAddr(std::uint8_t reg, const std::string& name);

  // VARM relative forms:
  void BlLabel(const std::string& name);
  void BLabel(const std::string& name);
  void BeqLabel(const std::string& name);
  void BneLabel(const std::string& name);
  /// ldrl rd, =label (pc-relative literal load of the word AT the label).
  void LdrLitLabel(std::uint8_t rd, const std::string& name);
  /// movw/movt pair loading a label's address.
  void MovImm32Label(std::uint8_t rd, const std::string& name);

  // --- Data directives -------------------------------------------------------
  void Word32(std::uint32_t v) { w_.WriteU32LE(v); }
  /// Emits a 32-bit little-endian word holding a label's address.
  void Word32Label(const std::string& name);
  void Byte(std::uint8_t v) { w_.WriteU8(v); }
  void Ascii(std::string_view text) { w_.WriteString(text); }
  void Asciz(std::string_view text);
  void Zeros(std::size_t count);
  /// Pads with HLT-encoding filler up to the given alignment.
  void AlignTo(std::uint32_t alignment);

  /// Resolves all fixups and returns the encoded bytes. Fails if any label
  /// is undefined, doubly defined, or a relative branch is out of range.
  util::Result<util::Bytes> Finish();

  /// Snapshot of all labels (guest addresses) — becomes the symbol table.
  [[nodiscard]] const std::map<std::string, mem::GuestAddr>& labels() const noexcept {
    return labels_;
  }

 private:
  enum class FixKind : std::uint8_t {
    kAbs32,        // little-endian absolute address at offset
    kVarmBl24,     // 24-bit signed word offset, relative to next pc
    kVarmRel16,    // 16-bit signed word offset, relative to next pc
    kVarmLit16,    // 16-bit signed byte offset, relative to next pc
  };
  struct Fixup {
    std::size_t offset;       // where in the buffer the field lives
    mem::GuestAddr insn_addr; // guest address of the instruction start
    std::string label;
    FixKind kind;
  };

  Arch arch_;
  mem::GuestAddr base_;
  util::ByteWriter w_;
  std::map<std::string, mem::GuestAddr> labels_;
  std::vector<Fixup> fixups_;
  std::vector<std::string> errors_;
};

}  // namespace connlab::isa
