#include "src/isa/assembler.hpp"

#include <cstdio>

namespace connlab::isa {

void Assembler::Label(const std::string& name) {
  if (labels_.contains(name)) {
    errors_.push_back("label redefined: " + name);
    return;
  }
  labels_[name] = addr();
}

util::Result<mem::GuestAddr> Assembler::LabelAddr(const std::string& name) const {
  auto it = labels_.find(name);
  if (it == labels_.end()) return util::NotFound("label not defined: " + name);
  return it->second;
}

void Assembler::CallLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  vx86::EncCall(w_, 0);
  fixups_.push_back({w_.size() - 4, insn, name, FixKind::kAbs32});
}

void Assembler::JmpLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  vx86::EncJmp(w_, 0);
  fixups_.push_back({w_.size() - 4, insn, name, FixKind::kAbs32});
}

void Assembler::JzLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  vx86::EncJz(w_, 0);
  fixups_.push_back({w_.size() - 4, insn, name, FixKind::kAbs32});
}

void Assembler::JnzLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  vx86::EncJnz(w_, 0);
  fixups_.push_back({w_.size() - 4, insn, name, FixKind::kAbs32});
}

void Assembler::PushLabelAddr(const std::string& name) {
  const mem::GuestAddr insn = addr();
  vx86::EncPushImm(w_, 0);
  fixups_.push_back({w_.size() - 4, insn, name, FixKind::kAbs32});
}

void Assembler::MovLabelAddr(std::uint8_t reg, const std::string& name) {
  const mem::GuestAddr insn = addr();
  vx86::EncMovImm(w_, reg, 0);
  fixups_.push_back({w_.size() - 4, insn, name, FixKind::kAbs32});
}

void Assembler::BlLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  varm::EncBl(w_, 0);
  fixups_.push_back({w_.size() - 3, insn, name, FixKind::kVarmBl24});
}

void Assembler::BLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  varm::EncB(w_, 0);
  fixups_.push_back({w_.size() - 2, insn, name, FixKind::kVarmRel16});
}

void Assembler::BeqLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  varm::EncBeq(w_, 0);
  fixups_.push_back({w_.size() - 2, insn, name, FixKind::kVarmRel16});
}

void Assembler::BneLabel(const std::string& name) {
  const mem::GuestAddr insn = addr();
  varm::EncBne(w_, 0);
  fixups_.push_back({w_.size() - 2, insn, name, FixKind::kVarmRel16});
}

void Assembler::LdrLitLabel(std::uint8_t rd, const std::string& name) {
  const mem::GuestAddr insn = addr();
  varm::EncLdrLit(w_, rd, 0);
  fixups_.push_back({w_.size() - 2, insn, name, FixKind::kVarmLit16});
}

void Assembler::MovImm32Label(std::uint8_t rd, const std::string& name) {
  const mem::GuestAddr movw_insn = addr();
  varm::EncMovW(w_, rd, 0);
  // Reuse the fixup machinery: record two half-word patches by encoding the
  // full address into the movw/movt immediates during Finish(). We model it
  // as two Abs-style fixups with dedicated handling via kind tags below —
  // simplest is to patch both 16-bit fields from a single kAbs32-like record,
  // so we store the movw offset and synthesise the movt patch from it.
  fixups_.push_back({w_.size() - 2, movw_insn, name, FixKind::kAbs32});
  // Marker fixup entry is resolved jointly; emit movt now.
  varm::EncMovT(w_, rd, 0);
}

void Assembler::Word32Label(const std::string& name) {
  const mem::GuestAddr here = addr();
  w_.WriteU32LE(0);
  fixups_.push_back({w_.size() - 4, here, name, FixKind::kAbs32});
}

void Assembler::Asciz(std::string_view text) {
  w_.WriteString(text);
  w_.WriteU8(0);
}

void Assembler::Zeros(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) w_.WriteU8(0);
}

void Assembler::AlignTo(std::uint32_t alignment) {
  if (alignment == 0) return;
  while (addr() % alignment != 0) w_.WriteU8(0);
}

util::Result<util::Bytes> Assembler::Finish() {
  if (!errors_.empty()) return util::InvalidArgument(errors_.front());
  util::Bytes out = std::move(w_).Take();

  const auto patch16 = [&out](std::size_t offset, std::uint16_t v) {
    out[offset] = static_cast<std::uint8_t>(v & 0xFF);
    out[offset + 1] = static_cast<std::uint8_t>(v >> 8);
  };
  const auto patch32 = [&out](std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
    }
  };

  for (const Fixup& fix : fixups_) {
    auto it = labels_.find(fix.label);
    if (it == labels_.end()) {
      return util::NotFound("undefined label: " + fix.label);
    }
    const mem::GuestAddr target = it->second;
    switch (fix.kind) {
      case FixKind::kAbs32: {
        // VARM MovImm32Label stores the low half at `offset` inside a movw
        // and the high half inside the following movt instruction (offset of
        // the movt immediate = movw imm offset + 4). Distinguish by arch and
        // by the opcode byte at the instruction start.
        const std::size_t insn_off = fix.offset - 2;
        if (arch_ == Arch::kVARM && out[insn_off] == varm::kOpMovW) {
          patch16(fix.offset, static_cast<std::uint16_t>(target & 0xFFFF));
          patch16(fix.offset + 4, static_cast<std::uint16_t>(target >> 16));
        } else {
          patch32(fix.offset, target);
        }
        break;
      }
      case FixKind::kVarmBl24: {
        const std::int64_t next = fix.insn_addr + kVARMInstrSize;
        const std::int64_t delta_bytes = static_cast<std::int64_t>(target) - next;
        if (delta_bytes % 4 != 0) {
          return util::InvalidArgument("bl target misaligned: " + fix.label);
        }
        const std::int64_t words = delta_bytes / 4;
        if (words < -(1 << 23) || words >= (1 << 23)) {
          return util::OutOfRange("bl target out of range: " + fix.label);
        }
        const std::uint32_t raw = static_cast<std::uint32_t>(words) & 0x00FFFFFF;
        out[fix.offset] = static_cast<std::uint8_t>(raw & 0xFF);
        out[fix.offset + 1] = static_cast<std::uint8_t>((raw >> 8) & 0xFF);
        out[fix.offset + 2] = static_cast<std::uint8_t>((raw >> 16) & 0xFF);
        break;
      }
      case FixKind::kVarmRel16: {
        const std::int64_t next = fix.insn_addr + kVARMInstrSize;
        const std::int64_t delta_bytes = static_cast<std::int64_t>(target) - next;
        if (delta_bytes % 4 != 0) {
          return util::InvalidArgument("branch target misaligned: " + fix.label);
        }
        const std::int64_t words = delta_bytes / 4;
        if (words < -(1 << 15) || words >= (1 << 15)) {
          return util::OutOfRange("branch target out of range: " + fix.label);
        }
        patch16(fix.offset, static_cast<std::uint16_t>(static_cast<std::int16_t>(words)));
        break;
      }
      case FixKind::kVarmLit16: {
        const std::int64_t next = fix.insn_addr + kVARMInstrSize;
        const std::int64_t delta = static_cast<std::int64_t>(target) - next;
        if (delta < -(1 << 15) || delta >= (1 << 15)) {
          return util::OutOfRange("literal out of range: " + fix.label);
        }
        patch16(fix.offset, static_cast<std::uint16_t>(static_cast<std::int16_t>(delta)));
        break;
      }
    }
  }
  return out;
}

}  // namespace connlab::isa
