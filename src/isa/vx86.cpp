#include "src/isa/vx86.hpp"

namespace connlab::isa::vx86 {

namespace {

constexpr std::uint8_t kRegCount = kVX86RegCount;

std::uint32_t ReadImm32(util::ByteSpan data, std::size_t offset) {
  return static_cast<std::uint32_t>(data[offset]) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 3]) << 24);
}

}  // namespace

std::uint8_t InstrLength(std::uint8_t opcode) noexcept {
  switch (opcode) {
    case kOpNop:
    case kOpRet:
    case kOpSyscall:
    case kOpHlt:
      return 1;
    case kOpPushReg:
    case kOpPopReg:
      return 2;
    case kOpMovReg:
    case kOpXorReg:
      return 3;
    case kOpAddReg:
      return 4;
    case kOpPushImm:
    case kOpCall:
    case kOpJmp:
    case kOpJmpInd:
    case kOpJz:
    case kOpJnz:
      return 5;
    case kOpMovImm:
    case kOpAddImm:
    case kOpSubImm:
    case kOpCmpImm:
      return 6;
    case kOpLoad:
    case kOpStore:
    case kOpLoadByte:
    case kOpStoreByte:
      return 7;
    default:
      return 0;
  }
}

util::Result<Instr> Decode(util::ByteSpan data, std::size_t offset) {
  if (offset >= data.size()) return util::Malformed("vx86 decode past end");
  const std::uint8_t opcode = data[offset];
  const std::uint8_t len = InstrLength(opcode);
  if (len == 0) return util::Malformed("vx86 invalid opcode");
  if (offset + len > data.size()) return util::Malformed("vx86 truncated instruction");

  Instr ins;
  ins.length = len;
  const auto reg_ok = [](std::uint8_t r) { return r < kRegCount; };

  switch (opcode) {
    case kOpNop: ins.op = Op::kNop; break;
    case kOpRet: ins.op = Op::kRet; break;
    case kOpSyscall: ins.op = Op::kSyscall; break;
    case kOpHlt: ins.op = Op::kHlt; break;
    case kOpPushReg:
      ins.op = Op::kPush;
      ins.ra = data[offset + 1];
      if (!reg_ok(ins.ra)) return util::Malformed("vx86 bad register");
      break;
    case kOpPopReg:
      ins.op = Op::kPop;
      ins.ra = data[offset + 1];
      if (!reg_ok(ins.ra)) return util::Malformed("vx86 bad register");
      break;
    case kOpMovReg:
    case kOpXorReg:
      ins.op = opcode == kOpMovReg ? Op::kMovReg : Op::kXorReg;
      ins.ra = data[offset + 1];
      ins.rb = data[offset + 2];
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb)) return util::Malformed("vx86 bad register");
      break;
    case kOpAddReg:
      ins.op = Op::kAddReg;
      ins.ra = data[offset + 1];
      ins.rb = data[offset + 2];
      ins.rc = data[offset + 3];
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb) || !reg_ok(ins.rc)) {
        return util::Malformed("vx86 bad register");
      }
      break;
    case kOpPushImm:
      ins.op = Op::kPushImm;
      ins.imm = ReadImm32(data, offset + 1);
      break;
    case kOpCall:
      ins.op = Op::kCall;
      ins.imm = ReadImm32(data, offset + 1);
      break;
    case kOpJmp:
      ins.op = Op::kJmp;
      ins.imm = ReadImm32(data, offset + 1);
      break;
    case kOpJmpInd:
      ins.op = Op::kJmpInd;
      ins.imm = ReadImm32(data, offset + 1);
      break;
    case kOpJz:
      ins.op = Op::kJz;
      ins.imm = ReadImm32(data, offset + 1);
      break;
    case kOpJnz:
      ins.op = Op::kJnz;
      ins.imm = ReadImm32(data, offset + 1);
      break;
    case kOpMovImm:
    case kOpAddImm:
    case kOpSubImm:
    case kOpCmpImm:
      ins.op = opcode == kOpMovImm   ? Op::kMovImm
               : opcode == kOpAddImm ? Op::kAddImm
               : opcode == kOpSubImm ? Op::kSubImm
                                     : Op::kCmpImm;
      ins.ra = data[offset + 1];
      if (!reg_ok(ins.ra)) return util::Malformed("vx86 bad register");
      ins.imm = ReadImm32(data, offset + 2);
      break;
    case kOpLoad:
    case kOpStore:
    case kOpLoadByte:
    case kOpStoreByte:
      ins.op = opcode == kOpLoad        ? Op::kLoad
               : opcode == kOpStore     ? Op::kStore
               : opcode == kOpLoadByte  ? Op::kLoadByte
                                        : Op::kStoreByte;
      ins.ra = data[offset + 1];
      ins.rb = data[offset + 2];
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb)) return util::Malformed("vx86 bad register");
      ins.imm = ReadImm32(data, offset + 3);
      break;
    default:
      return util::Malformed("vx86 invalid opcode");
  }
  return ins;
}

void EncNop(util::ByteWriter& w) { w.WriteU8(kOpNop); }

void EncPushImm(util::ByteWriter& w, std::uint32_t imm) {
  w.WriteU8(kOpPushImm);
  w.WriteU32LE(imm);
}

void EncPushReg(util::ByteWriter& w, std::uint8_t reg) {
  w.WriteU8(kOpPushReg);
  w.WriteU8(reg);
}

void EncPopReg(util::ByteWriter& w, std::uint8_t reg) {
  w.WriteU8(kOpPopReg);
  w.WriteU8(reg);
}

void EncMovImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm) {
  w.WriteU8(kOpMovImm);
  w.WriteU8(reg);
  w.WriteU32LE(imm);
}

void EncMovReg(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb) {
  w.WriteU8(kOpMovReg);
  w.WriteU8(ra);
  w.WriteU8(rb);
}

void EncLoad(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb,
             std::uint32_t disp) {
  w.WriteU8(kOpLoad);
  w.WriteU8(ra);
  w.WriteU8(rb);
  w.WriteU32LE(disp);
}

void EncStore(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb,
              std::uint32_t disp) {
  w.WriteU8(kOpStore);
  w.WriteU8(ra);
  w.WriteU8(rb);
  w.WriteU32LE(disp);
}

void EncAddImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm) {
  w.WriteU8(kOpAddImm);
  w.WriteU8(reg);
  w.WriteU32LE(imm);
}

void EncSubImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm) {
  w.WriteU8(kOpSubImm);
  w.WriteU8(reg);
  w.WriteU32LE(imm);
}

void EncCall(util::ByteWriter& w, std::uint32_t target) {
  w.WriteU8(kOpCall);
  w.WriteU32LE(target);
}

void EncRet(util::ByteWriter& w) { w.WriteU8(kOpRet); }

void EncJmp(util::ByteWriter& w, std::uint32_t target) {
  w.WriteU8(kOpJmp);
  w.WriteU32LE(target);
}

void EncJmpInd(util::ByteWriter& w, std::uint32_t slot) {
  w.WriteU8(kOpJmpInd);
  w.WriteU32LE(slot);
}

void EncSyscall(util::ByteWriter& w) { w.WriteU8(kOpSyscall); }
void EncHlt(util::ByteWriter& w) { w.WriteU8(kOpHlt); }

void EncXorReg(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb) {
  w.WriteU8(kOpXorReg);
  w.WriteU8(ra);
  w.WriteU8(rb);
}

void EncCmpImm(util::ByteWriter& w, std::uint8_t reg, std::uint32_t imm) {
  w.WriteU8(kOpCmpImm);
  w.WriteU8(reg);
  w.WriteU32LE(imm);
}

void EncJz(util::ByteWriter& w, std::uint32_t target) {
  w.WriteU8(kOpJz);
  w.WriteU32LE(target);
}

void EncJnz(util::ByteWriter& w, std::uint32_t target) {
  w.WriteU8(kOpJnz);
  w.WriteU32LE(target);
}

void EncAddReg(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb,
               std::uint8_t rc) {
  w.WriteU8(kOpAddReg);
  w.WriteU8(ra);
  w.WriteU8(rb);
  w.WriteU8(rc);
}

void EncLoadByte(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb,
                 std::uint32_t disp) {
  w.WriteU8(kOpLoadByte);
  w.WriteU8(ra);
  w.WriteU8(rb);
  w.WriteU32LE(disp);
}

void EncStoreByte(util::ByteWriter& w, std::uint8_t ra, std::uint8_t rb,
                  std::uint32_t disp) {
  w.WriteU8(kOpStoreByte);
  w.WriteU8(ra);
  w.WriteU8(rb);
  w.WriteU32LE(disp);
}

}  // namespace connlab::isa::vx86
