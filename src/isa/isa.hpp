// Common instruction model for connlab's two synthetic 32-bit ISAs.
//
// VX86 — x86-flavoured: variable-length encoding, stack-passed call
//   arguments (cdecl), a one-byte NOP (0x90), and RET popping the return
//   address off the stack.
// VARM — ARMv7-flavoured: fixed 4-byte instructions, register-passed
//   arguments (r0-r3), link-register calls (BL/BLX), no RET — returns happen
//   via BX lr or POP {..., pc}.
//
// The pair is deliberately asymmetric in exactly the dimensions the DSN'19
// paper's exploits differ: argument passing, NOP width, return mechanism.
// Neither encoding matches any real ISA; payloads built for them are inert
// outside this simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace connlab::isa {

enum class Arch : std::uint8_t { kVX86, kVARM };

std::string_view ArchName(Arch arch) noexcept;

// Register numbering.
//
// VX86 uses 8 general registers; names follow x86 convention. ESP is the
// stack pointer, EBP the frame pointer. The program counter (EIP) is not a
// numbered register.
enum VX86Reg : std::uint8_t {
  kEAX = 0, kECX = 1, kEDX = 2, kEBX = 3,
  kESP = 4, kEBP = 5, kESI = 6, kEDI = 7,
  kVX86RegCount = 8,
};

// VARM uses 16 registers, ARM-style: r13 = sp, r14 = lr, r15 = pc.
enum VARMReg : std::uint8_t {
  kR0 = 0, kR1 = 1, kR2 = 2, kR3 = 3, kR4 = 4, kR5 = 5, kR6 = 6, kR7 = 7,
  kR8 = 8, kR9 = 9, kR10 = 10, kR11 = 11, kR12 = 12,
  kSP = 13, kLR = 14, kPC = 15,
  kVARMRegCount = 16,
};

std::string_view VX86RegName(std::uint8_t reg) noexcept;
std::string_view VARMRegName(std::uint8_t reg) noexcept;

// Unified decoded-instruction representation. Operand meaning depends on op.
enum class Op : std::uint8_t {
  // Shared concepts (encodings differ per ISA).
  kNop,
  kMovImm,    // reg <- imm32 (VARM: MOVW writes low half & clears top)
  kMovReg,    // regA <- regB
  kLoad,      // reg <- [reg + disp]
  kStore,     // [reg + disp] <- reg
  kLoadByte,  // reg <- zero-extended byte at [reg + disp]
  kStoreByte, // [reg + disp] <- low byte of reg
  kAddImm,    // reg += imm
  kSubImm,    // reg -= imm
  kAddReg,    // regA = regB + regC
  kXorReg,    // regA ^= regB
  kMvn,       // regA = ~regB            (VARM only; parse_rr flavour)
  kCmpImm,    // flags = (reg == imm)
  kJmp,       // pc <- target
  kJz,
  kJnz,
  kCall,      // VX86: push ret, jump. (absolute target)
  kRet,       // VX86 only: pop pc
  kJmpInd,    // VX86 only: pc <- [abs32]  (PLT stub)
  kPush,      // VX86: push reg. VARM: push {mask}
  kPushImm,   // VX86 only: push imm32
  kPop,       // VX86: pop reg. VARM: pop {mask} (may include pc)
  kMovT,      // VARM only: reg[31:16] <- imm16
  kLdrLit,    // VARM only: reg <- [pc_next + simm]   (literal pool)
  kLdrInd,    // VARM only: reg <- [regB]
  kBl,        // VARM only: lr <- next, pc <- target (absolute, via assembler)
  kBlx,       // VARM only: lr <- next, pc <- reg
  kBx,        // VARM only: pc <- reg
  kSyscall,
  kHlt,
};

std::string_view OpName(Op op) noexcept;

struct Instr {
  Op op = Op::kHlt;
  std::uint8_t ra = 0;          // primary register
  std::uint8_t rb = 0;          // secondary register
  std::uint8_t rc = 0;          // tertiary register (kAddReg)
  std::uint32_t imm = 0;        // immediate / displacement / absolute target
  std::uint16_t reg_mask = 0;   // VARM push/pop register list
  std::uint8_t length = 0;      // encoded size in bytes

  [[nodiscard]] std::string ToString(Arch arch) const;
};

/// Instruction width bookkeeping: VARM is fixed 4; VX86 varies per op.
constexpr std::uint32_t kVARMInstrSize = 4;
/// Longest VX86 encoding (opcode + two reg bytes + 4-byte immediate). Fetch
/// windows and predecode bounds never need more than this.
constexpr std::uint32_t kVX86MaxInstrSize = 7;

}  // namespace connlab::isa
