// Linear-sweep disassembler over raw guest bytes. Used by the Debugger's
// `disas` view, the examples, and as the decode front door for the gadget
// finder (which additionally scans at every byte offset on VX86, the way
// real x86 gadget tools exploit unaligned decoding).
#pragma once

#include <string>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/mem/segment.hpp"
#include "src/util/bytes.hpp"
#include "src/util/status.hpp"

namespace connlab::isa {

/// Decodes one instruction of `arch` at data[offset].
util::Result<Instr> Decode(Arch arch, util::ByteSpan data, std::size_t offset);

struct DisasLine {
  mem::GuestAddr addr = 0;
  Instr instr;          // valid only if decoded
  bool decoded = false;
  std::uint8_t raw = 0; // first byte when not decodable
};

/// Sweeps from the start of `data` (mapped at `base`), resynchronising after
/// undecodable bytes (1 byte on VX86, 4 on VARM).
std::vector<DisasLine> Disassemble(Arch arch, util::ByteSpan data, mem::GuestAddr base);

/// Human-readable listing, gdb "disas"-style.
std::string DisassembleToString(Arch arch, util::ByteSpan data, mem::GuestAddr base);

}  // namespace connlab::isa
