#include "src/isa/varm.hpp"

namespace connlab::isa::varm {

namespace {

constexpr std::uint8_t kRegCount = kVARMRegCount;

std::int32_t SignExtend16(std::uint16_t v) noexcept {
  return static_cast<std::int16_t>(v);
}

std::int32_t SignExtend24(std::uint32_t v) noexcept {
  v &= 0x00FFFFFF;
  if (v & 0x00800000) v |= 0xFF000000;
  return static_cast<std::int32_t>(v);
}

}  // namespace

std::uint16_t Mask(std::initializer_list<std::uint8_t> regs) noexcept {
  std::uint16_t mask = 0;
  for (std::uint8_t r : regs) mask |= static_cast<std::uint16_t>(1u << r);
  return mask;
}

util::Result<Instr> Decode(util::ByteSpan data, std::size_t offset) {
  if (offset + kVARMInstrSize > data.size()) {
    return util::Malformed("varm decode past end");
  }
  const std::uint8_t op = data[offset];
  const std::uint8_t b1 = data[offset + 1];
  const std::uint8_t b2 = data[offset + 2];
  const std::uint8_t b3 = data[offset + 3];
  const std::uint16_t imm16 =
      static_cast<std::uint16_t>(b2 | (static_cast<std::uint16_t>(b3) << 8));

  Instr ins;
  ins.length = kVARMInstrSize;
  const auto reg_ok = [](std::uint8_t r) { return r < kRegCount; };

  switch (op) {
    case kOpHlt:
      ins.op = Op::kHlt;
      break;
    case kOpMovReg:
    case kOpMvn:
      ins.op = op == kOpMovReg ? Op::kMovReg : Op::kMvn;
      ins.ra = b1;
      ins.rb = b2;
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb)) return util::Malformed("varm bad register");
      break;
    case kOpMovW:
      ins.op = Op::kMovImm;
      ins.ra = b1;
      if (!reg_ok(ins.ra)) return util::Malformed("varm bad register");
      ins.imm = imm16;
      break;
    case kOpMovT:
      ins.op = Op::kMovT;
      ins.ra = b1;
      if (!reg_ok(ins.ra)) return util::Malformed("varm bad register");
      ins.imm = imm16;
      break;
    case kOpLdr:
    case kOpStr:
    case kOpLdrb:
    case kOpStrb:
      ins.op = op == kOpLdr    ? Op::kLoad
               : op == kOpStr  ? Op::kStore
               : op == kOpLdrb ? Op::kLoadByte
                               : Op::kStoreByte;
      ins.ra = b1;
      ins.rb = b2;
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb)) return util::Malformed("varm bad register");
      ins.imm = b3;
      break;
    case kOpPush:
    case kOpPop:
      ins.op = op == kOpPush ? Op::kPush : Op::kPop;
      ins.reg_mask = imm16;
      if (ins.reg_mask == 0) return util::Malformed("varm empty register list");
      break;
    case kOpBl: {
      ins.op = Op::kBl;
      const std::uint32_t raw = static_cast<std::uint32_t>(b1) |
                                (static_cast<std::uint32_t>(b2) << 8) |
                                (static_cast<std::uint32_t>(b3) << 16);
      ins.imm = static_cast<std::uint32_t>(SignExtend24(raw));
      break;
    }
    case kOpBx:
    case kOpBlx:
      ins.op = op == kOpBx ? Op::kBx : Op::kBlx;
      ins.ra = b1;
      if (!reg_ok(ins.ra)) return util::Malformed("varm bad register");
      break;
    case kOpB:
    case kOpBeq:
    case kOpBne:
      ins.op = op == kOpB ? Op::kJmp : (op == kOpBeq ? Op::kJz : Op::kJnz);
      ins.imm = static_cast<std::uint32_t>(SignExtend16(imm16));
      break;
    case kOpLdrLit:
      ins.op = Op::kLdrLit;
      ins.ra = b1;
      if (!reg_ok(ins.ra)) return util::Malformed("varm bad register");
      ins.imm = static_cast<std::uint32_t>(SignExtend16(imm16));
      break;
    case kOpLdrInd:
      ins.op = Op::kLdrInd;
      ins.ra = b1;
      ins.rb = b2;
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb)) return util::Malformed("varm bad register");
      break;
    case kOpAddImm:
    case kOpSubImm:
      ins.op = op == kOpAddImm ? Op::kAddImm : Op::kSubImm;
      ins.ra = b1;
      ins.rb = b2;
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb)) return util::Malformed("varm bad register");
      ins.imm = b3;
      break;
    case kOpSyscall:
      ins.op = Op::kSyscall;
      break;
    case kOpCmpImm:
      ins.op = Op::kCmpImm;
      ins.ra = b1;
      if (!reg_ok(ins.ra)) return util::Malformed("varm bad register");
      ins.imm = b2;
      break;
    case kOpAddReg:
      ins.op = Op::kAddReg;
      ins.ra = b1;
      ins.rb = b2;
      ins.rc = b3;
      if (!reg_ok(ins.ra) || !reg_ok(ins.rb) || !reg_ok(ins.rc)) {
        return util::Malformed("varm bad register");
      }
      break;
    default:
      return util::Malformed("varm invalid opcode");
  }
  return ins;
}

namespace {
void Word(util::ByteWriter& w, std::uint8_t op, std::uint8_t b1,
          std::uint8_t b2, std::uint8_t b3) {
  w.WriteU8(op);
  w.WriteU8(b1);
  w.WriteU8(b2);
  w.WriteU8(b3);
}

void WordImm16(util::ByteWriter& w, std::uint8_t op, std::uint8_t b1,
               std::uint16_t imm) {
  Word(w, op, b1, static_cast<std::uint8_t>(imm & 0xFF),
       static_cast<std::uint8_t>(imm >> 8));
}
}  // namespace

void EncHlt(util::ByteWriter& w) { Word(w, kOpHlt, 0, 0, 0); }

void EncMovReg(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rm) {
  Word(w, kOpMovReg, rd, rm, 0);
}

void EncNop(util::ByteWriter& w) { EncMovReg(w, kR1, kR1); }

void EncMovW(util::ByteWriter& w, std::uint8_t rd, std::uint16_t imm) {
  WordImm16(w, kOpMovW, rd, imm);
}

void EncMovT(util::ByteWriter& w, std::uint8_t rd, std::uint16_t imm) {
  WordImm16(w, kOpMovT, rd, imm);
}

void EncMovImm32(util::ByteWriter& w, std::uint8_t rd, std::uint32_t imm) {
  EncMovW(w, rd, static_cast<std::uint16_t>(imm & 0xFFFF));
  EncMovT(w, rd, static_cast<std::uint16_t>(imm >> 16));
}

void EncLdr(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off) {
  Word(w, kOpLdr, rd, rn, off);
}

void EncStr(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off) {
  Word(w, kOpStr, rd, rn, off);
}

void EncPush(util::ByteWriter& w, std::uint16_t mask) {
  WordImm16(w, kOpPush, 0, mask);
}

void EncPop(util::ByteWriter& w, std::uint16_t mask) {
  WordImm16(w, kOpPop, 0, mask);
}

void EncBl(util::ByteWriter& w, std::int32_t word_offset) {
  const std::uint32_t raw = static_cast<std::uint32_t>(word_offset) & 0x00FFFFFF;
  Word(w, kOpBl, static_cast<std::uint8_t>(raw & 0xFF),
       static_cast<std::uint8_t>((raw >> 8) & 0xFF),
       static_cast<std::uint8_t>((raw >> 16) & 0xFF));
}

void EncBx(util::ByteWriter& w, std::uint8_t rm) { Word(w, kOpBx, rm, 0, 0); }
void EncBlx(util::ByteWriter& w, std::uint8_t rm) { Word(w, kOpBlx, rm, 0, 0); }

void EncB(util::ByteWriter& w, std::int16_t word_offset) {
  WordImm16(w, kOpB, 0, static_cast<std::uint16_t>(word_offset));
}

void EncLdrLit(util::ByteWriter& w, std::uint8_t rd, std::int16_t byte_offset) {
  WordImm16(w, kOpLdrLit, rd, static_cast<std::uint16_t>(byte_offset));
}

void EncLdrInd(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rm) {
  Word(w, kOpLdrInd, rd, rm, 0);
}

void EncAddImm(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t imm) {
  Word(w, kOpAddImm, rd, rn, imm);
}

void EncSubImm(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t imm) {
  Word(w, kOpSubImm, rd, rn, imm);
}

void EncSyscall(util::ByteWriter& w) { Word(w, kOpSyscall, 0, 0, 0); }

void EncCmpImm(util::ByteWriter& w, std::uint8_t rd, std::uint8_t imm) {
  Word(w, kOpCmpImm, rd, imm, 0);
}

void EncBeq(util::ByteWriter& w, std::int16_t word_offset) {
  WordImm16(w, kOpBeq, 0, static_cast<std::uint16_t>(word_offset));
}

void EncBne(util::ByteWriter& w, std::int16_t word_offset) {
  WordImm16(w, kOpBne, 0, static_cast<std::uint16_t>(word_offset));
}

void EncMvn(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rm) {
  Word(w, kOpMvn, rd, rm, 0);
}

void EncAddReg(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t rm) {
  Word(w, kOpAddReg, rd, rn, rm);
}

void EncLdrb(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off) {
  Word(w, kOpLdrb, rd, rn, off);
}

void EncStrb(util::ByteWriter& w, std::uint8_t rd, std::uint8_t rn, std::uint8_t off) {
  Word(w, kOpStrb, rd, rn, off);
}

}  // namespace connlab::isa::varm
