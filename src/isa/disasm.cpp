#include "src/isa/disasm.hpp"

#include <cstdio>

#include "src/isa/varm.hpp"
#include "src/isa/vx86.hpp"

namespace connlab::isa {

util::Result<Instr> Decode(Arch arch, util::ByteSpan data, std::size_t offset) {
  return arch == Arch::kVX86 ? vx86::Decode(data, offset)
                             : varm::Decode(data, offset);
}

std::vector<DisasLine> Disassemble(Arch arch, util::ByteSpan data,
                                   mem::GuestAddr base) {
  std::vector<DisasLine> lines;
  std::size_t offset = 0;
  while (offset < data.size()) {
    DisasLine line;
    line.addr = base + static_cast<mem::GuestAddr>(offset);
    auto decoded = Decode(arch, data, offset);
    if (decoded.ok()) {
      line.instr = decoded.value();
      line.decoded = true;
      lines.push_back(line);
      offset += decoded.value().length;
    } else {
      line.raw = data[offset];
      lines.push_back(line);
      offset += arch == Arch::kVARM ? kVARMInstrSize : 1;
    }
  }
  return lines;
}

std::string DisassembleToString(Arch arch, util::ByteSpan data,
                                mem::GuestAddr base) {
  std::string out;
  char buf[32];
  for (const DisasLine& line : Disassemble(arch, data, base)) {
    std::snprintf(buf, sizeof(buf), "%08x:  ", line.addr);
    out += buf;
    if (line.decoded) {
      out += line.instr.ToString(arch);
    } else {
      std::snprintf(buf, sizeof(buf), ".byte 0x%02x", line.raw);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace connlab::isa
