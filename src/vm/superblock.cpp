// Superblock tier: block compilation and the computed-goto executor.
//
// Everything here lives in Cpu member functions so handlers touch the
// register file, address space, shadow stack and coverage state directly —
// the handler bodies are line-for-line transcriptions of the interpreter's
// ExecVX86/ExecVARM cases (vm/cpu.cpp), with the per-instruction dispatch,
// cache probes and generation checks hoisted to block granularity. When in
// doubt about semantics, the interpreter is the single source of truth and
// the differential suite (tests/test_differential.cpp) is the referee.
#include "src/vm/superblock.hpp"

#include <memory>

#include "src/isa/disasm.hpp"
#include "src/isa/vx86.hpp"
#include "src/obs/obs.hpp"
#include "src/vm/cpu.hpp"
#include "src/vm/syscalls.hpp"

namespace connlab::vm {

namespace {

/// Handler indices into the label table ExecSuperblock hands out in query
/// mode. The order must match the kLabels initializer exactly (enforced by
/// the static_assert next to it).
enum SbHandler : std::uint8_t {
  kHExit = 0,
  // VX86
  kHXNop,
  kHXMovImm,
  kHXMovReg,
  kHXXorReg,
  kHXAddImm,
  kHXSubImm,
  kHXAddReg,
  kHXCmpImm,
  kHXLoad,
  kHXStore,
  kHXLoadByte,
  kHXStoreByte,
  kHXPush,
  kHXPushImm,
  kHXPop,
  kHXCall,
  kHXRet,
  kHXJmp,
  kHXJz,
  kHXJnz,
  kHXJmpInd,
  kHXSyscall,
  kHXHlt,
  // VARM
  kHAMovReg,
  kHAMovImm,
  kHAMovT,
  kHAMvn,
  kHAAddImm,
  kHASubImm,
  kHAAddReg,
  kHACmpImm,
  kHALoad,
  kHAStore,
  kHALoadByte,
  kHAStoreByte,
  kHALdrLit,
  kHALdrInd,
  kHAPush,
  kHAPop,
  kHAPopPc,
  kHABl,
  kHABlx,
  kHABx,
  kHAJmp,
  kHAJz,
  kHAJnz,
  kHASyscall,
  kHAHlt,
  // Call-host continuation ops (appended so earlier indices stay stable):
  // a direct call/bl whose static target is a registered host-function
  // trampoline — the block performs the call, dispatches the trampoline and
  // resumes at the fall-through when it can.
  kHXCallHost,
  kHABlHost,
  kHandlerCount,
};

/// Builder verdict for one decoded instruction: which handler runs it, and
/// whether it ends the block. index < 0 means "not superblockable" — the
/// block ends before this pc and the interpreter executes it (including the
/// cannot-execute fault for ops foreign to the arch).
struct HandlerPick {
  int index = -1;
  bool terminator = false;
};

HandlerPick PickVX86(const isa::Instr& ins) noexcept {
  using isa::Op;
  switch (ins.op) {
    case Op::kNop: return {kHXNop, false};
    case Op::kMovImm: return {kHXMovImm, false};
    case Op::kMovReg: return {kHXMovReg, false};
    case Op::kXorReg: return {kHXXorReg, false};
    case Op::kAddImm: return {kHXAddImm, false};
    case Op::kSubImm: return {kHXSubImm, false};
    case Op::kAddReg: return {kHXAddReg, false};
    case Op::kCmpImm: return {kHXCmpImm, false};
    case Op::kLoad: return {kHXLoad, false};
    case Op::kStore: return {kHXStore, false};
    case Op::kLoadByte: return {kHXLoadByte, false};
    case Op::kStoreByte: return {kHXStoreByte, false};
    case Op::kPush: return {kHXPush, false};
    case Op::kPushImm: return {kHXPushImm, false};
    case Op::kPop: return {kHXPop, false};
    case Op::kCall: return {kHXCall, true};
    case Op::kRet: return {kHXRet, true};
    case Op::kJmp: return {kHXJmp, true};
    case Op::kJz: return {kHXJz, true};
    case Op::kJnz: return {kHXJnz, true};
    case Op::kJmpInd: return {kHXJmpInd, true};
    // Syscalls continue in-block: the handler re-checks stop state, pc and
    // the code generation before resuming (see x_syscall).
    case Op::kSyscall: return {kHXSyscall, false};
    case Op::kHlt: return {kHXHlt, true};
    default: return {};
  }
}

HandlerPick PickVARM(const isa::Instr& ins) noexcept {
  using isa::Op;
  // Pure ALU handlers skip the pc/r15 mirror between sync points, so any
  // r15 operand makes them interpreter-only: writing ra == pc is a control
  // transfer, and reading r15 would observe the skipped mirror. Handlers
  // that can fault re-sync pc and r15 first, so r15 *sources* are fine
  // there; r15 *destinations* still are not (set_reg would branch).
  const bool alu_r15 = ins.ra == isa::kPC || ins.rb == isa::kPC ||
                       ins.rc == isa::kPC;
  switch (ins.op) {
    case Op::kMovReg: return alu_r15 ? HandlerPick{} : HandlerPick{kHAMovReg, false};
    case Op::kMovImm: return alu_r15 ? HandlerPick{} : HandlerPick{kHAMovImm, false};
    case Op::kMovT: return alu_r15 ? HandlerPick{} : HandlerPick{kHAMovT, false};
    case Op::kMvn: return alu_r15 ? HandlerPick{} : HandlerPick{kHAMvn, false};
    case Op::kAddImm: return alu_r15 ? HandlerPick{} : HandlerPick{kHAAddImm, false};
    case Op::kSubImm: return alu_r15 ? HandlerPick{} : HandlerPick{kHASubImm, false};
    case Op::kAddReg: return alu_r15 ? HandlerPick{} : HandlerPick{kHAAddReg, false};
    case Op::kCmpImm: return alu_r15 ? HandlerPick{} : HandlerPick{kHACmpImm, false};
    case Op::kLoad:
      return ins.ra == isa::kPC ? HandlerPick{} : HandlerPick{kHALoad, false};
    case Op::kLoadByte:
      return ins.ra == isa::kPC ? HandlerPick{} : HandlerPick{kHALoadByte, false};
    case Op::kLdrLit:
      return ins.ra == isa::kPC ? HandlerPick{} : HandlerPick{kHALdrLit, false};
    case Op::kLdrInd:
      return ins.ra == isa::kPC ? HandlerPick{} : HandlerPick{kHALdrInd, false};
    case Op::kStore: return {kHAStore, false};
    case Op::kStoreByte: return {kHAStoreByte, false};
    case Op::kPush: return {kHAPush, false};
    case Op::kPop:
      // pop {..., pc} is a control transfer (and the CFI check point);
      // plain pops stay in-block.
      return (ins.reg_mask & (1u << isa::kPC)) != 0
                 ? HandlerPick{kHAPopPc, true}
                 : HandlerPick{kHAPop, false};
    case Op::kBl: return {kHABl, true};
    case Op::kBlx: return {kHABlx, true};
    case Op::kBx: return {kHABx, true};
    case Op::kJmp: return {kHAJmp, true};
    case Op::kJz: return {kHAJz, true};
    case Op::kJnz: return {kHAJnz, true};
    // Syscalls continue in-block, mirroring PickVX86.
    case Op::kSyscall: return {kHASyscall, false};
    case Op::kHlt: return {kHAHlt, true};
    default: return {};
  }
}

}  // namespace

void Cpu::FlushSuperblocks() noexcept {
  if (sb_ != nullptr) sb_->Flush();
}

const Superblock* Cpu::SuperblockFor(const mem::Segment* seg,
                                     mem::GuestAddr entry) {
  SuperblockCache::SegBlocks& store = sb_->For(seg);
  auto it = store.blocks.find(entry);
  if (it != store.blocks.end()) return &it->second;

  // Decode through a *fresh* bound DecodePlan when one covers this segment;
  // otherwise decode straight from the segment bytes (code assembled into a
  // scratch or stack segment after Boot has no plan, and must still tier
  // up — that is exactly the injected-shellcode / bench-loop case).
  const DecodePlan* plan = nullptr;
  if (shared_plans_enabled_) {
    for (const PlanBinding& binding : plan_bindings_) {
      if (binding.seg == seg && binding.gen == seg->generation()) {
        plan = binding.plan.get();
        break;
      }
    }
  }

  const void* const* labels = ExecSuperblock(nullptr, nullptr, 0, 0);

  // Shared-registry import: when a fresh DecodePlan binding pins this
  // segment's content identity, a canonical block compiled by any CPU booted
  // from the same image is copied into the private store instead of
  // re-walking the instruction stream. Import is refused — and the local
  // build below takes over — when local state could change the block's
  // shape: a breakpoint anywhere, a host function shadowing an interior pc,
  // or a call-host trampoline this CPU does not have.
  // Only default-shape blocks are shared: with block links disabled the
  // builder compiles the PR 9 shapes (syscalls terminate, no call-host
  // continuation), and mixing shapes across CPUs would blur that A/B knob.
  const bool shareable = shared_superblocks_enabled_ && block_links_enabled_ &&
                         plan != nullptr && breakpoints_.empty();
  if (shareable) {
    auto canonical = SharedSuperblockRegistry::Instance().Lookup(
        arch_, plan->base(), plan->size(), plan->content_hash(), entry);
    if (canonical != nullptr) {
      Superblock copy = *canonical;
      bool import_ok = true;
      for (SbOp& op : copy.ops) {
        op.link_taken = nullptr;  // canonicals are scrubbed; be explicit
        op.link_fall = nullptr;
        if (op.handler == labels[kHExit]) continue;  // retires nothing
        if (!host_fns_.empty() && host_fns_.contains(op.pc)) {
          import_ok = false;  // a local trampoline would have ended the block
          break;
        }
        if (op.handler == labels[kHXCallHost] ||
            op.handler == labels[kHABlHost]) {
          const mem::GuestAddr target =
              op.handler == labels[kHXCallHost]
                  ? op.instr.imm
                  : op.pc_next + static_cast<std::int32_t>(op.instr.imm) * 4;
          auto host = host_fns_.find(target);
          if (host == host_fns_.end()) {
            import_ok = false;
            break;
          }
          op.host = &host->second;  // std::map nodes are pointer-stable
        }
      }
      if (import_ok) {
        ++sb_->imports;
        auto [pos, inserted] = store.blocks.emplace(entry, std::move(copy));
        return &pos->second;
      }
    }
  }

  Superblock block;
  block.entry = entry;
  mem::GuestAddr pc = entry;
  bool ends_in_terminator = false;
  while (block.ops.size() < Superblock::kMaxOps) {
    // Host-function trampolines and breakpoint'd pcs end the region: the
    // interpreter dispatches the former, the Run() loop traps the latter.
    // (An entry breakpoint was already handled by Run() before we got here;
    // changing either set flushes all blocks.)
    if (!host_fns_.empty() && host_fns_.contains(pc)) break;
    if (pc != entry && breakpoints_.contains(pc)) break;
    isa::Instr local{};
    const isa::Instr* ins = plan != nullptr ? plan->Lookup(pc) : nullptr;
    if (ins == nullptr) {
      const std::uint32_t first_len =
          arch_ == isa::Arch::kVARM ? isa::kVARMInstrSize : 1u;
      if (!seg->ContainsRange(pc, first_len)) break;
      std::uint32_t len = first_len;
      if (arch_ == isa::Arch::kVX86) {
        len = isa::vx86::InstrLength(seg->At(pc));
        if (len == 0 || !seg->ContainsRange(pc, len)) break;
      }
      auto decoded = isa::Decode(arch_, seg->SpanAt(pc, len), 0);
      if (!decoded.ok()) break;
      local = decoded.value();
      ins = &local;
    }
    HandlerPick pick =
        arch_ == isa::Arch::kVX86 ? PickVX86(*ins) : PickVARM(*ins);
    if (pick.index < 0) break;
    SbOp op;
    op.instr = *ins;
    op.pc = pc;
    op.pc_next = pc + ins->length;
    op.cov_loc = CoverageLocation(pc);
    // A direct call whose static target is a host-function trampoline
    // becomes a call-host continuation op: the block performs the call,
    // dispatches the trampoline and resumes at the fall-through pc.
    // (RegisterHostFn flushes every block, so the trampoline set cannot
    // change under a compiled block.)
    if (block_links_enabled_ && !host_fns_.empty() &&
        (ins->op == isa::Op::kCall || ins->op == isa::Op::kBl)) {
      const mem::GuestAddr target =
          ins->op == isa::Op::kCall
              ? ins->imm
              : op.pc_next + static_cast<std::int32_t>(ins->imm) * 4;
      auto host = host_fns_.find(target);
      if (host != host_fns_.end()) {
        pick = {ins->op == isa::Op::kCall ? kHXCallHost : kHABlHost, false};
        op.host = &host->second;  // std::map nodes are pointer-stable
        op.cov_host = CoverageLocation(target);
      }
    }
    op.handler = labels[pick.index];
    block.ops.push_back(op);
    pc = op.pc_next;
    if (pick.terminator) {
      ends_in_terminator = true;
      break;
    }
    // With block links disabled (the PR 9 A/B baseline) syscalls end the
    // region as they used to; the handler's continuation path then flows
    // into the appended exit sentinel, handing control back unchanged.
    if (!block_links_enabled_ && ins->op == isa::Op::kSyscall) break;
  }
  block.count = static_cast<std::uint32_t>(block.ops.size());
  if (block.usable()) {
    if (!ends_in_terminator) {
      // The region fell through (length cap / segment edge / unsuperblockable
      // successor): append the exit sentinel that re-syncs pc and leaves.
      SbOp exit_op;
      exit_op.handler = labels[kHExit];
      exit_op.pc = pc;
      exit_op.pc_next = pc;
      block.ops.push_back(exit_op);
    }
    ++sb_->compiles;
    if (shareable) {
      // Publish a scrubbed canonical: link slots and host-fn pointers are
      // per-CPU state; everything that remains is a pure function of the
      // segment content the key hashes.
      auto canonical = std::make_shared<Superblock>(block);
      for (SbOp& op : canonical->ops) {
        op.host = nullptr;
        op.link_taken = nullptr;
        op.link_fall = nullptr;
      }
      SharedSuperblockRegistry::Instance().Publish(
          arch_, plan->base(), plan->size(), plan->content_hash(), entry,
          std::move(canonical));
    }
  }
  // Unusable blocks are inserted too: they negative-cache this entry pc so
  // the interpreter region is not re-scanned every visit.
  auto [pos, inserted] = store.blocks.emplace(entry, std::move(block));
  return &pos->second;
}

const Superblock* Cpu::LinkedSuccessor(const SbOp& op, const mem::Segment* seg,
                                       mem::GuestAddr target) {
  // Cached edge first: links only ever point to usable blocks in the same
  // (segment, generation) store, which the caller just re-validated — a
  // moved generation can never reach here with a stale pointer because the
  // op holding the link dies with the store too.
  if (op.link_taken != nullptr && op.link_taken->entry == target) {
    return op.link_taken;
  }
  if (op.link_fall != nullptr && op.link_fall->entry == target) {
    return op.link_fall;
  }
  // Resolve the edge. Only intra-segment targets link, so generation
  // invalidation drops predecessor, successor and the edge together; the
  // unchanged generation also means the segment still holds the execute
  // permission the block entry's fetch verified. Trampoline pcs stay with
  // the interpreter's dispatch.
  const std::uint32_t probe_len =
      arch_ == isa::Arch::kVARM ? isa::kVARMInstrSize : 1u;
  if (!seg->ContainsRange(target, probe_len)) return nullptr;
  if (!host_fns_.empty() && host_fns_.contains(target)) return nullptr;
  const Superblock* succ = SuperblockFor(seg, target);
  if (!succ->usable()) return nullptr;
  if (target == op.pc_next) {
    op.link_fall = succ;
  } else {
    op.link_taken = succ;
  }
  return succ;
}

bool Cpu::TrySuperblocks(std::uint64_t remaining) {
  // Tracing wants a disassembly string per retired instruction; only the
  // interpreter produces those.
  if (trace_limit_ != 0) return false;
  if (sb_ == nullptr) sb_ = std::make_unique<SuperblockCache>();
  bool executed = false;
  for (;;) {
    SuperblockCache::Slot& slot = sb_->SlotFor(pc_, predecode_shift_);
    const Superblock* block;
    const mem::Segment* seg;
    std::uint64_t gen;
    if (slot.block != nullptr && slot.pc == pc_ &&
        slot.seg->generation() == slot.gen) {
      block = slot.block;
      seg = slot.seg;
      gen = slot.gen;
    } else {
      const std::uint32_t probe_len =
          arch_ == isa::Arch::kVARM ? isa::kVARMInstrSize : 1u;
      auto head = space_->FetchSegment(pc_, probe_len);
      if (!head.ok()) {
        // Unfetchable pc (unmapped, W^X, or a host fn living at a
        // non-executable address): clear the probe's fault record and let
        // the interpreter path produce the authoritative outcome.
        space_->ClearFault();
        ++sb_->fallbacks;
        return executed;
      }
      seg = head.value();
      block = SuperblockFor(seg, pc_);
      gen = seg->generation();
      slot.pc = pc_;
      slot.gen = gen;
      slot.seg = seg;
      slot.block = block;
    }
    if (!block->usable() ||
        static_cast<std::uint64_t>(block->count) > remaining) {
      // Interpreter region, or fewer budget steps left than the block would
      // retire — the interpreter tail preserves exact step-limit semantics.
      ++sb_->fallbacks;
      return executed;
    }
    ++sb_->hits;
    const std::uint64_t before = steps_;
    ExecSuperblock(block, seg, gen, steps_ + remaining);
    executed = true;
    remaining -= steps_ - before;
    if (stop_.reason != StopReason::kRunning || remaining == 0 ||
        !breakpoints_.empty()) {
      return true;  // Run() re-evaluates its stop conditions
    }
  }
}

// Per-op bookkeeping at handler entry: the AFL edge update and retired-step
// count, exactly as Step() does before executing an instruction. The exit
// sentinel is the one handler that must NOT run this (it retires nothing).
#define CL_ENTER()                                                          \
  do {                                                                      \
    if (cov_bitmap_ != nullptr) {                                           \
      const std::uint32_t cl_cur = op->cov_loc;                             \
      std::uint8_t& cl_cell = cov_bitmap_[(cl_cur ^ cov_prev_) & cov_mask_]; \
      if (cl_cell != 0xFF) ++cl_cell;                                       \
      cov_prev_ = cl_cur >> 1;                                              \
    }                                                                       \
    ++steps_;                                                               \
  } while (0)

// Fall through to the next op in the block.
#define CL_NEXT()                             \
  do {                                        \
    ++op;                                     \
    goto* const_cast<void*>(op->handler);     \
  } while (0)

// Fall through after a guest store: if the store landed in the code segment
// the block was decoded from (shellcode patching itself), the remaining ops
// are stale — exit to the interpreter, which re-fetches through the
// generation-checked front door. op already points at the next op, whose pc
// field is exactly the resume address.
#define CL_SMC_NEXT()                         \
  do {                                        \
    ++op;                                     \
    if (seg->generation() != entry_gen) {     \
      ++sb_->invalidations;                   \
      goto h_exit;                            \
    }                                         \
    goto* const_cast<void*>(op->handler);     \
  } while (0)

// The interpreter's ExecVARM runs under set_pc(pc_next) — pc_ and its r15
// mirror both hold the fall-through address before any observable action.
// VARM handlers that can fault, push pc, or read r15 re-create that state.
#define CL_SET_PC_ARM(value)       \
  do {                             \
    const std::uint32_t cl_pc = (value); \
    pc_ = cl_pc;                   \
    regs_[isa::kPC] = cl_pc;       \
  } while (0)

// Direct-branch terminator: re-enter threaded code without returning through
// the dispatch loop whenever every per-entry precondition still holds —
// block store still valid (generation unchanged), nothing stopped, no
// breakpoints to honour, budget for a full pass of the target block. The
// target may be this block's own entry (the tight-loop shape) or, with
// block links enabled, any compiled block in the same segment; the resolved
// edge is cached on the branch op. Anything else hands control back to
// TrySuperblocks.
#define CL_BRANCH(target_val, SYNC_PC)                                    \
  do {                                                                    \
    const mem::GuestAddr cl_t = (target_val);                             \
    SYNC_PC(cl_t);                                                        \
    if (seg->generation() == entry_gen &&                                 \
        stop_.reason == StopReason::kRunning && breakpoints_.empty()) {   \
      if (cl_t == block->entry) {                                         \
        if (steps_ + block->count <= steps_cap) {                         \
          ++sb_->hits;                                                    \
          op = block->ops.data();                                         \
          goto* const_cast<void*>(op->handler);                           \
        }                                                                 \
      } else if (block_links_enabled_) {                                  \
        const Superblock* cl_succ = LinkedSuccessor(*op, seg, cl_t);      \
        if (cl_succ != nullptr && steps_ + cl_succ->count <= steps_cap) { \
          ++sb_->links;                                                   \
          block = cl_succ;                                                \
          op = block->ops.data();                                         \
          goto* const_cast<void*>(op->handler);                          \
        }                                                                 \
      }                                                                   \
    }                                                                     \
    return nullptr;                                                       \
  } while (0)
#define CL_SET_PC_X86(value) (pc_ = (value))

// Dispatches a call-host op's trampoline with Run()-loop parity — budget
// check first (a StepLimit stop lands at the trampoline pc, exactly where
// the interpreter stops), then the host-transit coverage edge Step()
// records — and decides whether the block can resume at the fall-through:
// the host function must have performed its return sequence back to
// pc_next, nothing may have stopped, no breakpoint may have appeared, the
// remaining ops must still fit the budget (the transit retired a step the
// block entry did not provision for), and the code bytes must be untouched
// (host functions write guest memory; CL_SMC_NEXT re-checks).
#define CL_HOST_DISPATCH()                                                   \
  do {                                                                       \
    if (steps_ >= steps_cap) return nullptr;                                 \
    if (cov_bitmap_ != nullptr) {                                            \
      const std::uint32_t cl_cur = op->cov_host;                             \
      std::uint8_t& cl_cell = cov_bitmap_[(cl_cur ^ cov_prev_) & cov_mask_]; \
      if (cl_cell != 0xFF) ++cl_cell;                                        \
      cov_prev_ = cl_cur >> 1;                                               \
    }                                                                        \
    DispatchHostFn(                                                          \
        *static_cast<const std::pair<std::string, HostFn>*>(op->host));      \
    if (stopped() || pc_ != op->pc_next || !breakpoints_.empty()) {          \
      return nullptr;                                                        \
    }                                                                        \
    const std::uint64_t cl_done =                                            \
        static_cast<std::uint64_t>(op - block->ops.data()) + 1;              \
    if (steps_ + (block->count - cl_done) > steps_cap) return nullptr;       \
    ++sb_->resumes;                                                          \
    CL_SMC_NEXT();                                                           \
  } while (0)

const void* const* Cpu::ExecSuperblock(const Superblock* block,
                                       const mem::Segment* seg,
                                       std::uint64_t entry_gen,
                                       std::uint64_t steps_cap) {
  // Label address table, indexed by SbHandler. Built once (function-local
  // static); query mode (block == nullptr) hands it to the block builder.
  static const void* const kLabels[] = {
      &&h_exit,
      // VX86
      &&x_nop, &&x_mov_imm, &&x_mov_reg, &&x_xor_reg, &&x_add_imm,
      &&x_sub_imm, &&x_add_reg, &&x_cmp_imm, &&x_load, &&x_store,
      &&x_load_byte, &&x_store_byte, &&x_push, &&x_push_imm, &&x_pop,
      &&x_call, &&x_ret, &&x_jmp, &&x_jz, &&x_jnz, &&x_jmp_ind, &&x_syscall,
      &&x_hlt,
      // VARM
      &&a_mov_reg, &&a_mov_imm, &&a_mov_t, &&a_mvn, &&a_add_imm, &&a_sub_imm,
      &&a_add_reg, &&a_cmp_imm, &&a_load, &&a_store, &&a_load_byte,
      &&a_store_byte, &&a_ldr_lit, &&a_ldr_ind, &&a_push, &&a_pop,
      &&a_pop_pc, &&a_bl, &&a_blx, &&a_bx, &&a_jmp, &&a_jz, &&a_jnz,
      &&a_syscall, &&a_hlt,
      // Call-host continuations
      &&x_call_host, &&a_bl_host,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kHandlerCount);
  if (block == nullptr) return kLabels;

  const SbOp* op = block->ops.data();
  goto* const_cast<void*>(op->handler);

// --- Shared -----------------------------------------------------------------

h_exit:
  // Block boundary without a control transfer (exit sentinel or an SMC
  // bailout): re-sync the architectural pc to the next unexecuted
  // instruction and hand control back to the Run() loop.
  set_pc(op->pc);
  return nullptr;

// --- VX86 handlers (mirror ExecVX86 case for case) ---------------------------

x_nop:
  CL_ENTER();
  CL_NEXT();

x_mov_imm:
  CL_ENTER();
  regs_[op->instr.ra] = op->instr.imm;
  CL_NEXT();

x_mov_reg:
  CL_ENTER();
  regs_[op->instr.ra] = regs_[op->instr.rb];
  CL_NEXT();

x_xor_reg:
  CL_ENTER();
  regs_[op->instr.ra] ^= regs_[op->instr.rb];
  CL_NEXT();

x_add_imm:
  CL_ENTER();
  regs_[op->instr.ra] += op->instr.imm;
  CL_NEXT();

x_sub_imm:
  CL_ENTER();
  regs_[op->instr.ra] -= op->instr.imm;
  CL_NEXT();

x_add_reg:
  CL_ENTER();
  regs_[op->instr.ra] = regs_[op->instr.rb] + regs_[op->instr.rc];
  CL_NEXT();

x_cmp_imm:
  CL_ENTER();
  zf_ = regs_[op->instr.ra] == op->instr.imm;
  CL_NEXT();

x_load: {
  CL_ENTER();
  pc_ = op->pc_next;  // fault pc is the fall-through, as in the interpreter
  auto value = space_->ReadU32(regs_[op->instr.rb] + op->instr.imm);
  if (!value.ok()) {
    Fault("load failed");
    return nullptr;
  }
  regs_[op->instr.ra] = value.value();
  CL_NEXT();
}

x_store: {
  CL_ENTER();
  pc_ = op->pc_next;
  auto status =
      space_->WriteU32(regs_[op->instr.rb] + op->instr.imm, regs_[op->instr.ra]);
  if (!status.ok()) {
    Fault("store failed");
    return nullptr;
  }
  CL_SMC_NEXT();
}

x_load_byte: {
  CL_ENTER();
  pc_ = op->pc_next;
  auto value = space_->ReadU8(regs_[op->instr.rb] + op->instr.imm);
  if (!value.ok()) {
    Fault("ldrb failed");
    return nullptr;
  }
  regs_[op->instr.ra] = value.value();
  CL_NEXT();
}

x_store_byte: {
  CL_ENTER();
  pc_ = op->pc_next;
  auto status = space_->WriteU8(
      regs_[op->instr.rb] + op->instr.imm,
      static_cast<std::uint8_t>(regs_[op->instr.ra] & 0xFF));
  if (!status.ok()) {
    Fault("strb failed");
    return nullptr;
  }
  CL_SMC_NEXT();
}

x_push: {
  CL_ENTER();
  pc_ = op->pc_next;
  const std::uint32_t next_sp = regs_[isa::kESP] - 4;
  auto status = space_->WriteU32(next_sp, regs_[op->instr.ra]);
  if (!status.ok()) {
    Fault("push failed");  // sp untouched on failure, as in Cpu::Push
    return nullptr;
  }
  regs_[isa::kESP] = next_sp;
  CL_SMC_NEXT();
}

x_push_imm: {
  CL_ENTER();
  pc_ = op->pc_next;
  const std::uint32_t next_sp = regs_[isa::kESP] - 4;
  auto status = space_->WriteU32(next_sp, op->instr.imm);
  if (!status.ok()) {
    Fault("push failed");
    return nullptr;
  }
  regs_[isa::kESP] = next_sp;
  CL_SMC_NEXT();
}

x_pop: {
  CL_ENTER();
  pc_ = op->pc_next;
  auto value = space_->ReadU32(regs_[isa::kESP]);
  if (!value.ok()) {
    Fault("pop failed");
    return nullptr;
  }
  regs_[isa::kESP] += 4;  // Pop() bumps sp before the destination write
  regs_[op->instr.ra] = value.value();
  CL_NEXT();
}

x_call: {
  CL_ENTER();
  pc_ = op->pc_next;
  const std::uint32_t next_sp = regs_[isa::kESP] - 4;
  auto status = space_->WriteU32(next_sp, op->pc_next);
  if (!status.ok()) {
    Fault("call push failed");
    return nullptr;
  }
  regs_[isa::kESP] = next_sp;
  if (shadow_enabled_) shadow_.push_back(op->pc_next);
  // The static callee is a direct-branch target like any other: chain into
  // its compiled block when the per-entry checks allow (a self-call
  // re-enters this block — recursion really is the tight-loop shape).
  CL_BRANCH(op->instr.imm, CL_SET_PC_X86);
}

x_call_host: {
  CL_ENTER();
  pc_ = op->pc_next;
  const std::uint32_t next_sp = regs_[isa::kESP] - 4;
  auto status = space_->WriteU32(next_sp, op->pc_next);
  if (!status.ok()) {
    Fault("call push failed");
    return nullptr;
  }
  regs_[isa::kESP] = next_sp;
  if (shadow_enabled_) shadow_.push_back(op->pc_next);
  pc_ = op->instr.imm;
  CL_HOST_DISPATCH();
}

x_ret: {
  CL_ENTER();
  pc_ = op->pc_next;
  auto target = space_->ReadU32(regs_[isa::kESP]);
  if (!target.ok()) {
    Fault("ret pop failed");
    return nullptr;
  }
  regs_[isa::kESP] += 4;
  if (!ShadowCheckReturn(target.value())) {
    OBS_COUNT("defense.cfi_traps");
    PushEvent(EventKind::kCfiViolation, "CFI: return address mismatch");
    RequestStop(StopReason::kCfiViolation, "CFI violation on ret");
    return nullptr;
  }
  pc_ = target.value();
  return nullptr;
}

x_jmp:
  CL_ENTER();
  CL_BRANCH(op->instr.imm, CL_SET_PC_X86);

x_jz:
  CL_ENTER();
  CL_BRANCH(zf_ ? op->instr.imm : op->pc_next, CL_SET_PC_X86);

x_jnz:
  CL_ENTER();
  CL_BRANCH(!zf_ ? op->instr.imm : op->pc_next, CL_SET_PC_X86);

x_jmp_ind: {
  CL_ENTER();
  pc_ = op->pc_next;
  auto target = space_->ReadU32(op->instr.imm);
  if (!target.ok()) {
    Fault("indirect jump load failed");
    return nullptr;
  }
  pc_ = target.value();
  return nullptr;
}

x_syscall: {
  CL_ENTER();
  pc_ = op->pc_next;
  util::Status status = DispatchSyscall(*this);
  if (!status.ok() && !stopped()) {
    Fault(status.ToString());
    return nullptr;
  }
  // Continue in-block when the syscall neither stopped the CPU nor moved pc
  // off the fall-through; syscalls can write guest memory, so CL_SMC_NEXT
  // re-checks the code generation. (No extra step to account for: the
  // syscall instruction itself was provisioned at block entry.)
  if (stopped() || pc_ != op->pc_next) return nullptr;
  ++sb_->resumes;
  CL_SMC_NEXT();
}

x_hlt:
  CL_ENTER();
  pc_ = op->pc;  // halt leaves pc on the hlt itself
  RequestStop(StopReason::kHalted, "hlt");
  return nullptr;

// --- VARM handlers (mirror ExecVARM case for case) ---------------------------

a_mov_reg:
  CL_ENTER();
  regs_[op->instr.ra] = regs_[op->instr.rb];
  CL_NEXT();

a_mov_imm:
  CL_ENTER();
  regs_[op->instr.ra] = op->instr.imm & 0xFFFF;
  CL_NEXT();

a_mov_t:
  CL_ENTER();
  regs_[op->instr.ra] =
      (regs_[op->instr.ra] & 0xFFFF) | (op->instr.imm << 16);
  CL_NEXT();

a_mvn:
  CL_ENTER();
  regs_[op->instr.ra] = ~regs_[op->instr.rb];
  CL_NEXT();

a_add_imm:
  CL_ENTER();
  regs_[op->instr.ra] = regs_[op->instr.rb] + op->instr.imm;
  CL_NEXT();

a_sub_imm:
  CL_ENTER();
  regs_[op->instr.ra] = regs_[op->instr.rb] - op->instr.imm;
  CL_NEXT();

a_add_reg:
  CL_ENTER();
  regs_[op->instr.ra] = regs_[op->instr.rb] + regs_[op->instr.rc];
  CL_NEXT();

a_cmp_imm:
  CL_ENTER();
  zf_ = regs_[op->instr.ra] == op->instr.imm;
  CL_NEXT();

a_load: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  auto value = space_->ReadU32(regs_[op->instr.rb] + op->instr.imm);
  if (!value.ok()) {
    Fault("ldr failed");
    return nullptr;
  }
  regs_[op->instr.ra] = value.value();  // ra != pc by construction
  CL_NEXT();
}

a_store: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  auto status =
      space_->WriteU32(regs_[op->instr.rb] + op->instr.imm, regs_[op->instr.ra]);
  if (!status.ok()) {
    Fault("str failed");
    return nullptr;
  }
  CL_SMC_NEXT();
}

a_load_byte: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  auto value = space_->ReadU8(regs_[op->instr.rb] + op->instr.imm);
  if (!value.ok()) {
    Fault("ldrb failed");
    return nullptr;
  }
  regs_[op->instr.ra] = value.value();
  CL_NEXT();
}

a_store_byte: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  auto status = space_->WriteU8(
      regs_[op->instr.rb] + op->instr.imm,
      static_cast<std::uint8_t>(regs_[op->instr.ra] & 0xFF));
  if (!status.ok()) {
    Fault("strb failed");
    return nullptr;
  }
  CL_SMC_NEXT();
}

a_ldr_lit: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  const mem::GuestAddr addr =
      op->pc_next + static_cast<std::int32_t>(op->instr.imm);
  auto value = space_->ReadU32(addr);
  if (!value.ok()) {
    Fault("ldrl failed");
    return nullptr;
  }
  regs_[op->instr.ra] = value.value();
  CL_NEXT();
}

a_ldr_ind: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  auto value = space_->ReadU32(regs_[op->instr.rb]);
  if (!value.ok()) {
    Fault("ldri failed");
    return nullptr;
  }
  regs_[op->instr.ra] = value.value();
  CL_NEXT();
}

a_push: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);  // push {..., pc} stores the fall-through
  const std::uint16_t mask = op->instr.reg_mask;
  int count = 0;
  for (int i = 0; i < 16; ++i) count += (mask >> i) & 1;
  std::uint32_t addr = regs_[isa::kSP] - 4 * static_cast<std::uint32_t>(count);
  const std::uint32_t new_sp = addr;
  for (int i = 0; i < 16; ++i) {
    if (((mask >> i) & 1) == 0) continue;
    auto status = space_->WriteU32(addr, regs_[i]);
    if (!status.ok()) {
      Fault("push failed");  // sp untouched on failure, earlier stores stand
      return nullptr;
    }
    addr += 4;
  }
  regs_[isa::kSP] = new_sp;
  CL_SMC_NEXT();
}

a_pop: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  const std::uint16_t mask = op->instr.reg_mask;  // bit 15 clear (a_pop_pc)
  std::uint32_t addr = regs_[isa::kSP];
  for (int i = 0; i < 16; ++i) {
    if (((mask >> i) & 1) == 0) continue;
    auto value = space_->ReadU32(addr);
    if (!value.ok()) {
      Fault("pop failed");
      return nullptr;
    }
    addr += 4;
    if (i != isa::kSP) regs_[i] = value.value();  // popping sp: value ignored
  }
  regs_[isa::kSP] = addr;
  CL_NEXT();
}

a_pop_pc: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  const std::uint16_t mask = op->instr.reg_mask;
  std::uint32_t addr = regs_[isa::kSP];
  std::uint32_t new_pc = op->pc_next;
  for (int i = 0; i < 16; ++i) {
    if (((mask >> i) & 1) == 0) continue;
    auto value = space_->ReadU32(addr);
    if (!value.ok()) {
      Fault("pop failed");
      return nullptr;
    }
    addr += 4;
    if (i == isa::kPC) {
      new_pc = value.value();
    } else if (i != isa::kSP) {
      regs_[i] = value.value();
    }
  }
  regs_[isa::kSP] = addr;
  if (!ShadowCheckReturn(new_pc)) {
    OBS_COUNT("defense.cfi_traps");
    PushEvent(EventKind::kCfiViolation, "CFI: return address mismatch");
    RequestStop(StopReason::kCfiViolation, "CFI violation on pop {pc}");
    return nullptr;
  }
  CL_SET_PC_ARM(new_pc);
  return nullptr;
}

a_bl:
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  regs_[isa::kLR] = op->pc_next;
  if (shadow_enabled_) shadow_.push_back(op->pc_next);
  CL_BRANCH(op->pc_next + static_cast<std::int32_t>(op->instr.imm) * 4,
            CL_SET_PC_ARM);

a_bl_host:
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  regs_[isa::kLR] = op->pc_next;
  if (shadow_enabled_) shadow_.push_back(op->pc_next);
  CL_SET_PC_ARM(op->pc_next + static_cast<std::int32_t>(op->instr.imm) * 4);
  CL_HOST_DISPATCH();

a_blx:
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);  // blx pc / blx lr read the synced values
  regs_[isa::kLR] = op->pc_next;
  if (shadow_enabled_) shadow_.push_back(op->pc_next);
  CL_SET_PC_ARM(regs_[op->instr.ra]);
  return nullptr;

a_bx:
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  CL_SET_PC_ARM(regs_[op->instr.ra]);
  return nullptr;

a_jmp:
  CL_ENTER();
  CL_BRANCH(op->pc_next + static_cast<std::int32_t>(op->instr.imm) * 4,
            CL_SET_PC_ARM);

a_jz:
  CL_ENTER();
  CL_BRANCH(zf_ ? op->pc_next + static_cast<std::int32_t>(op->instr.imm) * 4
                : op->pc_next,
            CL_SET_PC_ARM);

a_jnz:
  CL_ENTER();
  CL_BRANCH(!zf_ ? op->pc_next + static_cast<std::int32_t>(op->instr.imm) * 4
                 : op->pc_next,
            CL_SET_PC_ARM);

a_syscall: {
  CL_ENTER();
  CL_SET_PC_ARM(op->pc_next);
  util::Status status = DispatchSyscall(*this);
  if (!status.ok() && !stopped()) {
    Fault(status.ToString());
    return nullptr;
  }
  // Continuation mirrors x_syscall (the r15 mirror is maintained by any
  // set_pc the syscall layer performed).
  if (stopped() || pc_ != op->pc_next) return nullptr;
  ++sb_->resumes;
  CL_SMC_NEXT();
}

a_hlt:
  CL_ENTER();
  CL_SET_PC_ARM(op->pc);  // halt leaves pc on the hlt itself
  RequestStop(StopReason::kHalted, "hlt");
  return nullptr;
}

#undef CL_ENTER
#undef CL_NEXT
#undef CL_SMC_NEXT
#undef CL_SET_PC_ARM
#undef CL_SET_PC_X86
#undef CL_BRANCH
#undef CL_HOST_DISPATCH

SharedSuperblockRegistry& SharedSuperblockRegistry::Instance() {
  static SharedSuperblockRegistry registry;
  return registry;
}

std::shared_ptr<const Superblock> SharedSuperblockRegistry::Lookup(
    isa::Arch arch, mem::GuestAddr base, std::uint32_t size,
    std::uint64_t content_hash, mem::GuestAddr entry) const {
  const Key key{static_cast<std::uint8_t>(arch), base, size, content_hash,
                entry};
  std::shared_lock lock(mu_);
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return nullptr;
  imports_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void SharedSuperblockRegistry::Publish(isa::Arch arch, mem::GuestAddr base,
                                       std::uint32_t size,
                                       std::uint64_t content_hash,
                                       mem::GuestAddr entry,
                                       std::shared_ptr<const Superblock> block) {
  const Key key{static_cast<std::uint8_t>(arch), base, size, content_hash,
                entry};
  std::unique_lock lock(mu_);
  auto [it, inserted] = blocks_.emplace(key, std::move(block));
  if (!inserted) return;  // racing publish of identical content: first wins
  publishes_.fetch_add(1, std::memory_order_relaxed);
  insertion_order_.push_back(key);
  while (blocks_.size() > kMaxBlocks) {
    blocks_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

SharedSuperblockRegistry::Stats SharedSuperblockRegistry::GetStats() const {
  std::shared_lock lock(mu_);
  Stats stats;
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  stats.imports = imports_.load(std::memory_order_relaxed);
  stats.live_blocks = blocks_.size();
  return stats;
}

void SharedSuperblockRegistry::Clear() {
  std::unique_lock lock(mu_);
  blocks_.clear();
  insertion_order_.clear();
}

}  // namespace connlab::vm
