#include "src/vm/cpu.hpp"

#include <cstdio>

#include "src/isa/disasm.hpp"
#include "src/isa/varm.hpp"
#include "src/isa/vx86.hpp"
#include "src/obs/obs.hpp"
#include "src/util/log.hpp"
#include "src/vm/superblock.hpp"
#include "src/vm/syscalls.hpp"

namespace connlab::vm {

namespace {
std::string Hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

#ifndef CONNLAB_OBS_DISABLED
constexpr std::size_t kStopReasons =
    static_cast<std::size_t>(StopReason::kHeapCorruption) + 1;

/// Per-stop-reason counters, interned once (magic-static, so the table is
/// built thread-safely): flushes happen often enough under fuzzing that the
/// name-building + registry lookup must not recur per flush.
obs::Counter* const* StopReasonCounters() {
  struct Table {
    obs::Counter* c[kStopReasons];
    Table() {
      for (std::size_t i = 0; i < kStopReasons; ++i) {
        c[i] = &obs::Registry::Instance().GetCounter(
            "vm.stop." +
            std::string(StopReasonName(static_cast<StopReason>(i))));
      }
    }
  };
  static const Table table;
  return table.c;
}
#endif
}  // namespace

std::string_view StopReasonName(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kRunning: return "running";
    case StopReason::kHalted: return "halted";
    case StopReason::kExited: return "exited";
    case StopReason::kShellSpawned: return "shell-spawned";
    case StopReason::kProcessExec: return "process-exec";
    case StopReason::kFault: return "fault";
    case StopReason::kAbort: return "abort";
    case StopReason::kStepLimit: return "step-limit";
    case StopReason::kBreakpoint: return "breakpoint";
    case StopReason::kCfiViolation: return "cfi-violation";
    case StopReason::kHeapCorruption: return "heap-corruption";
  }
  return "?";
}

std::string StopInfo::ToString() const {
  std::string out(StopReasonName(reason));
  out += " at pc=" + Hex(pc);
  if (!detail.empty()) out += " (" + detail + ")";
  if (fault.has_value()) {
    out += " [" + mem::AccessKindName(fault->kind) + " fault: " + fault->detail + "]";
  }
  return out;
}

Cpu::Cpu(isa::Arch arch, mem::AddressSpace& space)
    : arch_(arch),
      space_(&space),
      predecode_(kPredecodeSlots),
      predecode_shift_(arch == isa::Arch::kVARM ? 2 : 0),
      predecode_enabled_(predecode_default_),
      shared_plans_enabled_(shared_plans_default_),
      superblocks_enabled_(superblocks_default_),
      block_links_enabled_(block_links_default_),
      shared_superblocks_enabled_(shared_superblocks_default_) {}

Cpu::~Cpu() {
#ifndef CONNLAB_OBS_DISABLED
  FlushObsBatch();
#endif
}

#ifndef CONNLAB_OBS_DISABLED
void Cpu::FlushObsBatch() noexcept {
  if (obs_batch_.runs == 0) return;
  static obs::Counter* const steps = &obs::Registry::Instance().GetCounter("vm.steps");
  steps->Add(obs_batch_.steps);
  obs::Counter* const* stop_counters = StopReasonCounters();
  for (std::size_t i = 0; i < kStopReasons; ++i) {
    if (obs_batch_.stops[i] != 0) stop_counters[i]->Add(obs_batch_.stops[i]);
  }
  obs_batch_ = ObsBatch{};
  // Superblock-tier counters ride the same batch cadence: they only move
  // inside Run(), and every Run ends by flushing-or-counting the batch.
  if (sb_ != nullptr) {
    if (sb_->compiles != 0) {
      OBS_COUNT_N("vm.superblock.compiles", sb_->compiles);
      sb_->compiles = 0;
    }
    if (sb_->hits != 0) {
      OBS_COUNT_N("vm.superblock.hits", sb_->hits);
      sb_->hits = 0;
    }
    if (sb_->fallbacks != 0) {
      OBS_COUNT_N("vm.superblock.fallbacks", sb_->fallbacks);
      sb_->fallbacks = 0;
    }
    if (sb_->invalidations != 0) {
      OBS_COUNT_N("vm.superblock.invalidations", sb_->invalidations);
      sb_->invalidations = 0;
    }
    if (sb_->links != 0) {
      OBS_COUNT_N("vm.superblock.links", sb_->links);
      sb_->links = 0;
    }
    if (sb_->resumes != 0) {
      OBS_COUNT_N("vm.superblock.resumes", sb_->resumes);
      sb_->resumes = 0;
    }
    if (sb_->imports != 0) {
      OBS_COUNT_N("vm.superblock.imports", sb_->imports);
      sb_->imports = 0;
    }
  }
}
#endif

void Cpu::FlushPredecodeCache() noexcept {
  for (PredecodeEntry& slot : predecode_) slot = PredecodeEntry{};
}

void Cpu::BindDecodePlan(const mem::Segment* seg,
                         std::shared_ptr<const DecodePlan> plan) {
  if (seg == nullptr || plan == nullptr) return;
  for (PlanBinding& binding : plan_bindings_) {
    if (binding.seg == seg) {
      binding.gen = seg->generation();
      binding.plan = std::move(plan);
      return;
    }
  }
  plan_bindings_.push_back(PlanBinding{seg, seg->generation(), std::move(plan)});
}

void Cpu::RearmDecodePlan(const mem::Segment* seg,
                          std::uint64_t content_hash) noexcept {
  for (std::size_t i = 0; i < plan_bindings_.size(); ++i) {
    if (plan_bindings_[i].seg != seg) continue;
    if (plan_bindings_[i].plan->content_hash() == content_hash) {
      plan_bindings_[i].gen = seg->generation();
    } else {
      plan_bindings_.erase(plan_bindings_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
    return;
  }
}

const DecodePlan* Cpu::BoundPlan(const mem::Segment* seg) const noexcept {
  for (const PlanBinding& binding : plan_bindings_) {
    if (binding.seg == seg) return binding.plan.get();
  }
  return nullptr;
}

const isa::Instr* Cpu::PlannedInstr(const mem::Segment* seg) const noexcept {
  for (const PlanBinding& binding : plan_bindings_) {
    if (binding.seg != seg) continue;
    // A moved generation means the segment was written or re-protected
    // since binding; the plan's decodes may be stale, so refuse and let the
    // ordinary decode path (and its SMC-correct per-CPU cache) take over.
    if (binding.gen != seg->generation()) return nullptr;
    return binding.plan->Lookup(pc_);
  }
  return nullptr;
}

std::uint32_t Cpu::sp() const noexcept {
  return arch_ == isa::Arch::kVX86 ? regs_[isa::kESP] : regs_[isa::kSP];
}

void Cpu::set_sp(std::uint32_t value) noexcept {
  if (arch_ == isa::Arch::kVX86) {
    regs_[isa::kESP] = value;
  } else {
    regs_[isa::kSP] = value;
  }
}

util::Status Cpu::Push(std::uint32_t value) {
  const std::uint32_t next = sp() - 4;
  CONNLAB_RETURN_IF_ERROR(space_->WriteU32(next, value));
  set_sp(next);
  return util::OkStatus();
}

util::Result<std::uint32_t> Cpu::Pop() {
  CONNLAB_ASSIGN_OR_RETURN(std::uint32_t value, space_->ReadU32(sp()));
  set_sp(sp() + 4);
  return value;
}

util::Status Cpu::RegisterHostFn(mem::GuestAddr addr, std::string name, HostFn fn) {
  if (host_fns_.contains(addr)) {
    return util::AlreadyExists("host function already at " + Hex(addr));
  }
  host_fns_[addr] = {std::move(name), std::move(fn)};
  // A new trampoline may shadow an address whose decode (or absence) is
  // cached; start clean rather than tracking individual slots. Compiled
  // superblocks may likewise run straight through the new trampoline's pc.
  FlushPredecodeCache();
  FlushSuperblocks();
  return util::OkStatus();
}

std::string Cpu::HostFnName(mem::GuestAddr addr) const {
  auto it = host_fns_.find(addr);
  return it == host_fns_.end() ? std::string() : it->second.first;
}

void Cpu::RequestStop(StopReason reason, std::string detail) {
  stop_.reason = reason;
  stop_.detail = std::move(detail);
  stop_.pc = pc_;
}

void Cpu::PushEvent(EventKind kind, std::string text) {
  events_.push_back(Event{kind, std::move(text), pc_, steps_});
}

bool Cpu::ShadowCheckReturn(std::uint32_t target) noexcept {
  if (!shadow_enabled_) return true;
  if (!shadow_.empty() && shadow_.back() == target) {
    shadow_.pop_back();
    return true;
  }
  return false;
}

void Cpu::Fault(std::string detail) {
  stop_.reason = StopReason::kFault;
  stop_.detail = std::move(detail);
  stop_.pc = pc_;
  stop_.fault = space_->last_fault();
  space_->ClearFault();
}

StopInfo Cpu::Run(std::uint64_t max_steps) {
  stop_ = StopInfo{};
  stop_.reason = StopReason::kRunning;
  const std::uint64_t start_steps = steps_;
  while (!stopped()) {
    if (steps_ - start_steps >= max_steps) {
      RequestStop(StopReason::kStepLimit, "instruction budget exhausted");
      break;
    }
    if (!breakpoints_.empty() && !skip_breakpoint_once_ &&
        breakpoints_.contains(pc_)) {
      RequestStop(StopReason::kBreakpoint, "breakpoint");
      skip_breakpoint_once_ = true;  // next Run steps over it
      break;
    }
    skip_breakpoint_once_ = false;
    if (superblocks_enabled_ &&
        TrySuperblocks(max_steps - (steps_ - start_steps))) {
      continue;  // re-evaluate stop/budget/breakpoints at the block boundary
    }
    Step();
  }
  stop_.steps = steps_ - start_steps;
  // Plain member increments only: fuzz targets issue tens of short Run()
  // calls per exec, so even one shard add per Run costs a few percent of
  // throughput. The batch flushes to the registry every kFlushRuns runs and
  // in ~Cpu(), which covers every current scrape point (campaign reports
  // scrape after the workers' Systems are destroyed). No separate runs
  // counter: every Run ends in exactly one stop reason, so total runs is
  // the sum of the vm.stop.* counters.
#ifndef CONNLAB_OBS_DISABLED
  obs_batch_.steps += stop_.steps;
  const auto reason_index = static_cast<std::size_t>(stop_.reason);
  if (reason_index < kStopReasons) ++obs_batch_.stops[reason_index];
  if (++obs_batch_.runs >= ObsBatch::kFlushRuns) FlushObsBatch();
#endif
  if (stop_.reason != StopReason::kBreakpoint) skip_breakpoint_once_ = false;
  return stop_;
}

void Cpu::set_trace_limit(std::size_t limit) {
  trace_limit_ = limit;
  if (limit == 0) {
    trace_.clear();
  } else {
    while (trace_.size() > limit) trace_.pop_front();
  }
}

std::string Cpu::TraceString() const {
  std::string out;
  for (const TraceEntry& entry : trace_) {
    out += Hex(entry.pc) + ":  " + entry.text + "\n";
  }
  return out;
}

void Cpu::Step() {
  if (stopped()) return;
  if (cov_bitmap_ != nullptr) RecordCoverageEdge();

  if (predecode_enabled_) {
    const PredecodeEntry& slot = PredecodeSlot(pc_);
    if (slot.pc == pc_ && slot.kind == PredecodeEntry::Kind::kInstr &&
        slot.gen == slot.seg->generation()) {
      // Hot path: pc hit and the backing segment is byte-for-byte what we
      // decoded from (write generation unchanged). No map lookup, no fetch,
      // no decode. Copying the 12-byte Instr out keeps ExecuteInstr free of
      // any aliasing with the cache slot.
      const isa::Instr ins = slot.instr;
      ++steps_;
      if (trace_limit_ != 0) {
        trace_.push_back({pc_, ins.ToString(arch_)});
        if (trace_.size() > trace_limit_) trace_.pop_front();
      }
      ExecuteInstr(ins);
      return;
    }
    if (slot.pc == pc_ && slot.kind == PredecodeEntry::Kind::kHostFn) {
      DispatchHostFn(*slot.host);
      return;
    }
  }
  StepSlow();
}

void Cpu::DispatchHostFn(const std::pair<std::string, HostFn>& fn) {
  ++steps_;
  if (trace_limit_ != 0) {
    trace_.push_back({pc_, "<host: " + fn.first + ">"});
    if (trace_.size() > trace_limit_) trace_.pop_front();
  }
  CONNLAB_DEBUG("vm") << "host fn " << fn.first << " at " << Hex(pc_);
  util::Status status = fn.second(*this);
  if (!status.ok() && !stopped()) {
    Fault("in host function " + fn.first + ": " + status.ToString());
  }
}

void Cpu::StepSlow() {
  // Host-function trampoline takes priority over decoding.
  auto host = host_fns_.find(pc_);
  if (host != host_fns_.end()) {
    if (predecode_enabled_) {
      PredecodeEntry& slot = PredecodeSlot(pc_);
      slot.pc = pc_;
      slot.kind = PredecodeEntry::Kind::kHostFn;
      slot.seg = nullptr;
      slot.host = &host->second;  // std::map nodes are pointer-stable
    }
    DispatchHostFn(host->second);
    return;
  }

  if (!predecode_enabled_) {
    // Legacy fetch/decode, byte-copying via util::Bytes. Kept verbatim as
    // the differential-test baseline: identical fault wording, identical
    // two-step VX86 fetch semantics.
    const std::uint32_t fetch_len =
        arch_ == isa::Arch::kVARM ? isa::kVARMInstrSize : 1;
    auto first = space_->Fetch(pc_, fetch_len);
    if (!first.ok()) {
      Fault("instruction fetch failed");
      return;
    }
    util::Bytes window = std::move(first).value();
    if (arch_ == isa::Arch::kVX86) {
      const std::uint8_t len = isa::vx86::InstrLength(window[0]);
      if (len == 0) {
        Fault("illegal instruction byte " + Hex(window[0]) + " at " + Hex(pc_));
        return;
      }
      if (len > 1) {
        auto rest = space_->Fetch(pc_, len);
        if (!rest.ok()) {
          Fault("instruction fetch failed (tail)");
          return;
        }
        window = std::move(rest).value();
      }
    }
    auto decoded = isa::Decode(arch_, window, 0);
    if (!decoded.ok()) {
      Fault("illegal instruction at " + Hex(pc_));
      return;
    }
    OBS_COUNT("vm.decodes");
    ++steps_;
    if (trace_limit_ != 0) {
      trace_.push_back({pc_, decoded.value().ToString(arch_)});
      if (trace_.size() > trace_limit_) trace_.pop_front();
    }
    ExecuteInstr(decoded.value());
    return;
  }

  // Zero-allocation fetch (this is where W^X bites: no X => fault). Mirrors
  // the legacy path's two-step VX86 probe so fault details stay identical.
  const std::uint32_t first_len =
      arch_ == isa::Arch::kVARM ? isa::kVARMInstrSize : 1;
  auto head = space_->FetchSegment(pc_, first_len);
  if (!head.ok()) {
    Fault("instruction fetch failed");
    return;
  }
  const mem::Segment* seg = head.value();

  // Shared decode plan (the cross-CPU L2 behind the per-CPU slots): the
  // fetch above already enforced X on this segment, a valid plan entry is
  // wholly inside it, and the generation check above ruled out writes since
  // the plan was built — so executing the planned decode is bit-identical
  // to decoding here. Offsets the plan could not decode fall through so
  // fault wording stays byte-identical to the plain path.
  if (shared_plans_enabled_) {
    if (const isa::Instr* planned = PlannedInstr(seg)) {
      OBS_COUNT("vm.plan_hits");
      PredecodeEntry& slot = PredecodeSlot(pc_);
      slot.pc = pc_;
      slot.kind = PredecodeEntry::Kind::kInstr;
      slot.seg = seg;
      slot.gen = seg->generation();
      slot.instr = *planned;
      slot.host = nullptr;
      const isa::Instr ins = *planned;  // plans are immutable; copy anyway,
      ++steps_;                         // matching the hot path's idiom
      if (trace_limit_ != 0) {
        trace_.push_back({pc_, ins.ToString(arch_)});
        if (trace_.size() > trace_limit_) trace_.pop_front();
      }
      ExecuteInstr(ins);
      return;
    }
  }

  std::uint32_t len = first_len;
  if (arch_ == isa::Arch::kVX86) {
    const std::uint8_t op = seg->At(pc_);
    len = isa::vx86::InstrLength(op);
    if (len == 0) {
      Fault("illegal instruction byte " + Hex(op) + " at " + Hex(pc_));
      return;
    }
    if (len > 1) {
      auto full = space_->FetchSegment(pc_, len);
      if (!full.ok()) {
        Fault("instruction fetch failed (tail)");
        return;
      }
      seg = full.value();
    }
  }
  auto decoded = isa::Decode(arch_, seg->SpanAt(pc_, len), 0);
  if (!decoded.ok()) {
    Fault("illegal instruction at " + Hex(pc_));
    return;
  }
  OBS_COUNT("vm.decodes");

  PredecodeEntry& slot = PredecodeSlot(pc_);
  slot.pc = pc_;
  slot.kind = PredecodeEntry::Kind::kInstr;
  slot.seg = seg;
  slot.gen = seg->generation();
  slot.instr = decoded.value();
  slot.host = nullptr;

  ++steps_;
  if (trace_limit_ != 0) {
    trace_.push_back({pc_, decoded.value().ToString(arch_)});
    if (trace_.size() > trace_limit_) trace_.pop_front();
  }
  ExecuteInstr(decoded.value());
}

Cpu::State Cpu::SaveState() const {
  State state;
  state.regs = regs_;
  state.pc = pc_;
  state.zf = zf_;
  state.steps = steps_;
  state.shadow = shadow_;
  state.events = events_;
  return state;
}

void Cpu::RestoreState(const State& state) {
  regs_ = state.regs;
  pc_ = state.pc;
  zf_ = state.zf;
  steps_ = state.steps;
  shadow_ = state.shadow;
  events_ = state.events;
  stop_ = StopInfo{};
  skip_breakpoint_once_ = false;
  trace_.clear();
  cov_prev_ = 0;
  // Cached decodes whose segments were rewritten are invalidated by the
  // generation tags; no flush needed.
}

void Cpu::ExecuteInstr(const isa::Instr& ins) {
  const mem::GuestAddr pc_next = pc_ + ins.length;
  if (arch_ == isa::Arch::kVX86) {
    ExecVX86(ins, pc_next);
  } else {
    ExecVARM(ins, pc_next);
  }
}

void Cpu::ExecVX86(const isa::Instr& ins, mem::GuestAddr pc_next) {
  using isa::Op;
  set_pc(pc_next);  // default; control flow overrides below
  switch (ins.op) {
    case Op::kNop:
      break;
    case Op::kMovImm:
      regs_[ins.ra] = ins.imm;
      break;
    case Op::kMovReg:
      regs_[ins.ra] = regs_[ins.rb];
      break;
    case Op::kXorReg:
      regs_[ins.ra] ^= regs_[ins.rb];
      break;
    case Op::kAddImm:
      regs_[ins.ra] += ins.imm;
      break;
    case Op::kSubImm:
      regs_[ins.ra] -= ins.imm;
      break;
    case Op::kAddReg:
      regs_[ins.ra] = regs_[ins.rb] + regs_[ins.rc];
      break;
    case Op::kCmpImm:
      zf_ = regs_[ins.ra] == ins.imm;
      break;
    case Op::kLoad: {
      auto value = space_->ReadU32(regs_[ins.rb] + ins.imm);
      if (!value.ok()) { Fault("load failed"); return; }
      regs_[ins.ra] = value.value();
      break;
    }
    case Op::kStore: {
      auto status = space_->WriteU32(regs_[ins.rb] + ins.imm, regs_[ins.ra]);
      if (!status.ok()) { Fault("store failed"); return; }
      break;
    }
    case Op::kLoadByte: {
      auto value = space_->ReadU8(regs_[ins.rb] + ins.imm);
      if (!value.ok()) { Fault("ldrb failed"); return; }
      regs_[ins.ra] = value.value();
      break;
    }
    case Op::kStoreByte: {
      auto status = space_->WriteU8(
          regs_[ins.rb] + ins.imm,
          static_cast<std::uint8_t>(regs_[ins.ra] & 0xFF));
      if (!status.ok()) { Fault("strb failed"); return; }
      break;
    }
    case Op::kPush: {
      auto status = Push(regs_[ins.ra]);
      if (!status.ok()) { Fault("push failed"); return; }
      break;
    }
    case Op::kPushImm: {
      auto status = Push(ins.imm);
      if (!status.ok()) { Fault("push failed"); return; }
      break;
    }
    case Op::kPop: {
      auto value = Pop();
      if (!value.ok()) { Fault("pop failed"); return; }
      regs_[ins.ra] = value.value();
      break;
    }
    case Op::kCall: {
      auto status = Push(pc_next);
      if (!status.ok()) { Fault("call push failed"); return; }
      ShadowPush(pc_next);
      set_pc(ins.imm);
      break;
    }
    case Op::kRet: {
      auto target = Pop();
      if (!target.ok()) { Fault("ret pop failed"); return; }
      if (!ShadowCheckReturn(target.value())) {
        OBS_COUNT("defense.cfi_traps");
        PushEvent(EventKind::kCfiViolation, "CFI: return address mismatch");
        RequestStop(StopReason::kCfiViolation, "CFI violation on ret");
        return;
      }
      set_pc(target.value());
      break;
    }
    case Op::kJmp:
      set_pc(ins.imm);
      break;
    case Op::kJz:
      if (zf_) set_pc(ins.imm);
      break;
    case Op::kJnz:
      if (!zf_) set_pc(ins.imm);
      break;
    case Op::kJmpInd: {
      auto target = space_->ReadU32(ins.imm);
      if (!target.ok()) { Fault("indirect jump load failed"); return; }
      set_pc(target.value());
      break;
    }
    case Op::kSyscall: {
      util::Status status = DispatchSyscall(*this);
      if (!status.ok() && !stopped()) { Fault(status.ToString()); return; }
      break;
    }
    case Op::kHlt:
      set_pc(pc_next - ins.length);  // halt leaves pc on the hlt itself
      RequestStop(StopReason::kHalted, "hlt");
      break;
    default:
      Fault("vx86 cannot execute op " + std::string(isa::OpName(ins.op)));
      break;
  }
}

void Cpu::ExecVARM(const isa::Instr& ins, mem::GuestAddr pc_next) {
  using isa::Op;
  set_pc(pc_next);
  switch (ins.op) {
    case Op::kMovReg:
      set_reg(ins.ra, regs_[ins.rb]);
      break;
    case Op::kMovImm:
      set_reg(ins.ra, ins.imm & 0xFFFF);
      break;
    case Op::kMovT:
      set_reg(ins.ra, (regs_[ins.ra] & 0xFFFF) | (ins.imm << 16));
      break;
    case Op::kMvn:
      set_reg(ins.ra, ~regs_[ins.rb]);
      break;
    case Op::kAddImm:
      set_reg(ins.ra, regs_[ins.rb] + ins.imm);
      break;
    case Op::kSubImm:
      set_reg(ins.ra, regs_[ins.rb] - ins.imm);
      break;
    case Op::kAddReg:
      set_reg(ins.ra, regs_[ins.rb] + regs_[ins.rc]);
      break;
    case Op::kCmpImm:
      zf_ = regs_[ins.ra] == ins.imm;
      break;
    case Op::kLoad: {
      auto value = space_->ReadU32(regs_[ins.rb] + ins.imm);
      if (!value.ok()) { Fault("ldr failed"); return; }
      set_reg(ins.ra, value.value());
      break;
    }
    case Op::kStore: {
      auto status = space_->WriteU32(regs_[ins.rb] + ins.imm, regs_[ins.ra]);
      if (!status.ok()) { Fault("str failed"); return; }
      break;
    }
    case Op::kLoadByte: {
      auto value = space_->ReadU8(regs_[ins.rb] + ins.imm);
      if (!value.ok()) { Fault("ldrb failed"); return; }
      set_reg(ins.ra, value.value());
      break;
    }
    case Op::kStoreByte: {
      auto status = space_->WriteU8(
          regs_[ins.rb] + ins.imm,
          static_cast<std::uint8_t>(regs_[ins.ra] & 0xFF));
      if (!status.ok()) { Fault("strb failed"); return; }
      break;
    }
    case Op::kLdrLit: {
      const mem::GuestAddr addr =
          pc_next + static_cast<std::int32_t>(ins.imm);
      auto value = space_->ReadU32(addr);
      if (!value.ok()) { Fault("ldrl failed"); return; }
      set_reg(ins.ra, value.value());
      break;
    }
    case Op::kLdrInd: {
      auto value = space_->ReadU32(regs_[ins.rb]);
      if (!value.ok()) { Fault("ldri failed"); return; }
      set_reg(ins.ra, value.value());
      break;
    }
    case Op::kPush: {
      // ARM store-multiple, descending: lowest register at lowest address.
      int count = 0;
      for (int i = 0; i < 16; ++i) count += (ins.reg_mask >> i) & 1;
      std::uint32_t addr = sp() - 4 * static_cast<std::uint32_t>(count);
      const std::uint32_t new_sp = addr;
      for (int i = 0; i < 16; ++i) {
        if (((ins.reg_mask >> i) & 1) == 0) continue;
        auto status = space_->WriteU32(addr, regs_[i]);
        if (!status.ok()) { Fault("push failed"); return; }
        addr += 4;
      }
      set_sp(new_sp);
      break;
    }
    case Op::kPop: {
      // ARM load-multiple, ascending; pc (bit 15) loaded last => control
      // transfer. This is the `pop {..., pc}` return/gadget mechanism.
      std::uint32_t addr = sp();
      std::uint32_t new_pc = pc_next;
      bool has_pc = false;
      for (int i = 0; i < 16; ++i) {
        if (((ins.reg_mask >> i) & 1) == 0) continue;
        auto value = space_->ReadU32(addr);
        if (!value.ok()) { Fault("pop failed"); return; }
        addr += 4;
        if (i == isa::kPC) {
          new_pc = value.value();
          has_pc = true;
        } else if (i == isa::kSP) {
          // Popping sp is unpredictable on real ARM; we ignore the value
          // (sp is rewritten below anyway).
        } else {
          regs_[i] = value.value();
        }
      }
      set_sp(addr);
      if (has_pc) {
        if (!ShadowCheckReturn(new_pc)) {
          OBS_COUNT("defense.cfi_traps");
          PushEvent(EventKind::kCfiViolation, "CFI: return address mismatch");
          RequestStop(StopReason::kCfiViolation, "CFI violation on pop {pc}");
          return;
        }
        set_pc(new_pc);
      }
      break;
    }
    case Op::kBl: {
      regs_[isa::kLR] = pc_next;
      ShadowPush(pc_next);
      set_pc(pc_next + static_cast<std::int32_t>(ins.imm) * 4);
      break;
    }
    case Op::kBlx:
      regs_[isa::kLR] = pc_next;
      ShadowPush(pc_next);
      set_pc(regs_[ins.ra]);
      break;
    case Op::kBx:
      set_pc(regs_[ins.ra]);
      break;
    case Op::kJmp:
      set_pc(pc_next + static_cast<std::int32_t>(ins.imm) * 4);
      break;
    case Op::kJz:
      if (zf_) set_pc(pc_next + static_cast<std::int32_t>(ins.imm) * 4);
      break;
    case Op::kJnz:
      if (!zf_) set_pc(pc_next + static_cast<std::int32_t>(ins.imm) * 4);
      break;
    case Op::kSyscall: {
      util::Status status = DispatchSyscall(*this);
      if (!status.ok() && !stopped()) { Fault(status.ToString()); return; }
      break;
    }
    case Op::kHlt:
      set_pc(pc_next - ins.length);  // halt leaves pc on the hlt itself
      RequestStop(StopReason::kHalted, "hlt");
      break;
    default:
      Fault("varm cannot execute op " + std::string(isa::OpName(ins.op)));
      break;
  }
}

std::string Cpu::RegistersString() const {
  std::string out;
  char buf[32];
  const int count = arch_ == isa::Arch::kVX86 ? 8 : 16;
  for (int i = 0; i < count; ++i) {
    const std::string_view name =
        arch_ == isa::Arch::kVX86
            ? isa::VX86RegName(static_cast<std::uint8_t>(i))
            : isa::VARMRegName(static_cast<std::uint8_t>(i));
    std::snprintf(buf, sizeof(buf), "%s=%08x ", std::string(name).c_str(), regs_[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "pc=%08x zf=%d", pc_, zf_ ? 1 : 0);
  out += buf;
  return out;
}

}  // namespace connlab::vm
