#include "src/vm/decode_plan.hpp"

#include "src/isa/disasm.hpp"

namespace connlab::vm {

std::uint64_t DecodePlan::HashContent(util::ByteSpan bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::shared_ptr<const DecodePlan> DecodePlan::Build(isa::Arch arch,
                                                    const mem::Segment& seg) {
  auto plan = std::shared_ptr<DecodePlan>(new DecodePlan());
  plan->arch_ = arch;
  plan->base_ = seg.base();
  plan->size_ = seg.size();
  plan->hash_ = HashContent(seg.data());
  const util::ByteSpan bytes(seg.data().data(), seg.data().size());
  const std::uint32_t step = arch == isa::Arch::kVARM ? isa::kVARMInstrSize : 1;
  plan->entries_.resize(plan->size_ / step + (plan->size_ % step != 0));
  for (std::uint32_t off = 0; off < plan->size_; off += step) {
    auto decoded = isa::Decode(arch, bytes, off);
    if (!decoded.ok()) continue;  // entry stays length == 0 (invalid)
    plan->entries_[off / step] = decoded.value();
    ++plan->valid_;
  }
  return plan;
}

DecodePlanRegistry& DecodePlanRegistry::Instance() {
  static DecodePlanRegistry registry;
  return registry;
}

std::shared_ptr<const DecodePlan> DecodePlanRegistry::GetOrBuild(
    isa::Arch arch, const mem::Segment& seg) {
  Key key{static_cast<std::uint8_t>(arch), seg.base(), seg.size(),
          DecodePlan::HashContent(seg.data()), seg.name()};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++shares_;
    return it->second;
  }
  // Building under the lock serialises concurrent cold boots of the same
  // image; that is the point — the second booter waits instead of decoding
  // the same text a second time.
  std::shared_ptr<const DecodePlan> plan = DecodePlan::Build(arch, seg);
  ++builds_;
  if (plans_.size() >= kMaxPlans && !insertion_order_.empty()) {
    plans_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
  insertion_order_.push_back(key);
  plans_.emplace(std::move(key), plan);
  return plan;
}

DecodePlanRegistry::Stats DecodePlanRegistry::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{builds_, shares_, plans_.size()};
}

void DecodePlanRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  insertion_order_.clear();
}

}  // namespace connlab::vm
