#include "src/vm/decode_plan.hpp"

#include <mutex>

#include "src/isa/disasm.hpp"

namespace connlab::vm {

std::uint64_t DecodePlan::HashContent(util::ByteSpan bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::shared_ptr<const DecodePlan> DecodePlan::Build(isa::Arch arch,
                                                    const mem::Segment& seg) {
  auto plan = std::shared_ptr<DecodePlan>(new DecodePlan());
  plan->arch_ = arch;
  plan->base_ = seg.base();
  plan->size_ = seg.size();
  plan->hash_ = HashContent(seg.data());
  const util::ByteSpan bytes(seg.data().data(), seg.data().size());
  const std::uint32_t step = arch == isa::Arch::kVARM ? isa::kVARMInstrSize : 1;
  plan->entries_.resize(plan->size_ / step + (plan->size_ % step != 0));
  for (std::uint32_t off = 0; off < plan->size_; off += step) {
    auto decoded = isa::Decode(arch, bytes, off);
    if (!decoded.ok()) continue;  // entry stays length == 0 (invalid)
    plan->entries_[off / step] = decoded.value();
    ++plan->valid_;
  }
  return plan;
}

DecodePlanRegistry& DecodePlanRegistry::Instance() {
  static DecodePlanRegistry registry;
  return registry;
}

std::shared_ptr<const DecodePlan> DecodePlanRegistry::GetOrBuild(
    isa::Arch arch, const mem::Segment& seg) {
  Key key{static_cast<std::uint8_t>(arch), seg.base(), seg.size(),
          DecodePlan::HashContent(seg.data()), seg.name()};
  {
    // The hot path — every post-crash reboot of every worker lands here —
    // takes only a reader lock, so concurrent lookups never serialise.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      shares_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build outside any lock: cold boots of *different* images proceed in
  // parallel instead of queueing behind one mutex. Two workers racing to
  // build the same image both decode it, but only one insert wins and the
  // loser adopts the winner's plan — a rare duplicate decode, paid once per
  // image, beats serialising every boot in the fleet.
  std::shared_ptr<const DecodePlan> plan = DecodePlan::Build(arch, seg);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = plans_.try_emplace(key, plan);
  if (!inserted) {
    shares_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  builds_.fetch_add(1, std::memory_order_relaxed);
  if (plans_.size() > kMaxPlans && !insertion_order_.empty()) {
    plans_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
  insertion_order_.push_back(std::move(key));
  return plan;
}

DecodePlanRegistry::Stats DecodePlanRegistry::GetStats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return Stats{builds_.load(std::memory_order_relaxed),
               shares_.load(std::memory_order_relaxed), plans_.size()};
}

void DecodePlanRegistry::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  plans_.clear();
  insertion_order_.clear();
}

}  // namespace connlab::vm
