// The guest CPU: an interpreter over VX86 / VARM instruction streams with
// W^X-enforcing fetch, a host-function trampoline registry, breakpoints and
// an event log.
//
// Host functions are how connlab hosts high-level guest code (the simulated
// Connman parser, libc routines) without a C compiler: a guest address is
// registered with a callback; when pc reaches it, the callback runs *against
// guest memory and guest registers* — it reads its arguments per the calling
// convention, mutates only guest state, and performs the return-sequence
// itself (popping the return address / reading lr). Hijacked control flow —
// shellcode, ROP gadgets, PLT stubs — is ordinary interpreted code.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/mem/address_space.hpp"
#include "src/vm/decode_plan.hpp"
#include "src/vm/events.hpp"

namespace connlab::vm {

struct SbOp;
struct Superblock;
class SuperblockCache;

enum class StopReason : std::uint8_t {
  kRunning,       // not stopped (internal)
  kHalted,        // hlt or an explicit clean stop from a host function
  kExited,        // exit() syscall
  kShellSpawned,  // exec of a shell — the paper's success condition
  kProcessExec,   // exec of a non-shell program
  kFault,         // SIGSEGV / SIGILL equivalent
  kAbort,         // SIGABRT equivalent (canary failure)
  kStepLimit,     // ran out of instruction budget
  kBreakpoint,    // debugger breakpoint hit
  kCfiViolation,  // shadow-stack return check failed (CFI CaRE model)
  kHeapCorruption,  // heap-integrity check failed (chunk canary / unlink)
};

std::string_view StopReasonName(StopReason reason) noexcept;

struct StopInfo {
  StopReason reason = StopReason::kRunning;
  std::string detail;
  std::optional<mem::FaultInfo> fault;   // populated for kFault
  std::uint32_t exit_code = 0;           // populated for kExited
  mem::GuestAddr pc = 0;                 // pc when the CPU stopped
  std::uint64_t steps = 0;               // instructions retired this Run

  [[nodiscard]] std::string ToString() const;
};

class Cpu {
 public:
  using HostFn = std::function<util::Status(Cpu&)>;

  Cpu(isa::Arch arch, mem::AddressSpace& space);
  ~Cpu();
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  [[nodiscard]] isa::Arch arch() const noexcept { return arch_; }
  [[nodiscard]] mem::AddressSpace& space() noexcept { return *space_; }
  [[nodiscard]] const mem::AddressSpace& space() const noexcept { return *space_; }

  // --- Register file -------------------------------------------------------
  [[nodiscard]] std::uint32_t reg(std::uint8_t index) const noexcept {
    return regs_[index];
  }
  void set_reg(std::uint8_t index, std::uint32_t value) noexcept {
    regs_[index] = value;
    if (arch_ == isa::Arch::kVARM && index == isa::kPC) pc_ = value;
  }
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }
  void set_pc(std::uint32_t value) noexcept {
    pc_ = value;
    if (arch_ == isa::Arch::kVARM) regs_[isa::kPC] = value;
  }
  /// Stack pointer, arch-aware (ESP on VX86, r13 on VARM).
  [[nodiscard]] std::uint32_t sp() const noexcept;
  void set_sp(std::uint32_t value) noexcept;
  [[nodiscard]] bool zf() const noexcept { return zf_; }
  void set_zf(bool value) noexcept { zf_ = value; }

  // --- Stack helpers (4-byte, descending) -----------------------------------
  util::Status Push(std::uint32_t value);
  util::Result<std::uint32_t> Pop();

  // --- Host functions --------------------------------------------------------
  util::Status RegisterHostFn(mem::GuestAddr addr, std::string name, HostFn fn);
  [[nodiscard]] bool IsHostFn(mem::GuestAddr addr) const noexcept {
    return host_fns_.contains(addr);
  }
  [[nodiscard]] std::string HostFnName(mem::GuestAddr addr) const;

  // --- Execution --------------------------------------------------------------
  /// Runs until a stop condition or `max_steps` instructions.
  StopInfo Run(std::uint64_t max_steps);

  /// Executes exactly one instruction (or host function). The stop state is
  /// observable through stopped()/stop_info() afterwards.
  void Step();

  // --- Predecode cache ------------------------------------------------------
  // Direct-mapped cache of decoded instructions (and host-function hits)
  // keyed by pc. Entries are tagged with the backing segment's write
  // generation, so any write into a segment — shellcode landing on the
  // stack, a debugger poke into .text — invalidates its cached decodes and
  // the next execution re-fetches through the permission-checked front door.
  // Disabled, the CPU runs the legacy fetch/decode path instruction by
  // instruction (the differential-test and benchmarking baseline).
  void set_predecode_enabled(bool enabled) noexcept {
    predecode_enabled_ = enabled;
    FlushPredecodeCache();
  }
  [[nodiscard]] bool predecode_enabled() const noexcept {
    return predecode_enabled_;
  }
  /// Process-wide default applied to newly constructed CPUs (the loader
  /// builds CPUs deep inside Boot; tests flip this to compare modes).
  static void set_predecode_default(bool enabled) noexcept {
    predecode_default_ = enabled;
  }
  [[nodiscard]] static bool predecode_default() noexcept {
    return predecode_default_;
  }
  void FlushPredecodeCache() noexcept;

  // --- Shared decode plans --------------------------------------------------
  // A binding attaches an immutable DecodePlan (see vm/decode_plan.hpp) to
  // one of this CPU's segments at its current write generation. While the
  // generation holds, predecode misses inside the segment are served from
  // the plan instead of decoding; the moment the segment is written or
  // re-protected the binding goes stale and the CPU falls back to the
  // ordinary per-CPU decode path (SMC-correct by construction). The loader
  // binds plans for executable, non-writable segments at Boot.
  void BindDecodePlan(const mem::Segment* seg,
                      std::shared_ptr<const DecodePlan> plan);
  /// After a snapshot restore rewrote `seg`'s bytes: re-arms the binding at
  /// the new generation when the restored content (identified by its hash)
  /// is exactly what the plan was built from, and drops it otherwise.
  void RearmDecodePlan(const mem::Segment* seg,
                       std::uint64_t content_hash) noexcept;
  /// The plan currently bound for `seg` (stale or not); nullptr if none.
  [[nodiscard]] const DecodePlan* BoundPlan(const mem::Segment* seg) const noexcept;
  void set_shared_plans_enabled(bool enabled) noexcept {
    shared_plans_enabled_ = enabled;
  }
  [[nodiscard]] bool shared_plans_enabled() const noexcept {
    return shared_plans_enabled_;
  }
  /// Process-wide default applied to newly constructed CPUs, mirroring
  /// set_predecode_default (the differential suite toggles it around whole
  /// scenarios).
  static void set_shared_plans_default(bool enabled) noexcept {
    shared_plans_default_ = enabled;
  }
  [[nodiscard]] static bool shared_plans_default() noexcept {
    return shared_plans_default_;
  }

  // --- Superblock tier ------------------------------------------------------
  // Straight-line regions compiled into computed-goto threaded code (see
  // vm/superblock.hpp): the Run() loop dispatches whole blocks when it can
  // and falls back to Step() everywhere else. Blocks are keyed to (segment,
  // write generation) exactly like predecode slots, so SMC / W^X flips /
  // snapshot restores invalidate them; store-class ops re-check the code
  // segment's generation mid-block. Disabling the tier drops every block.
  void set_superblocks_enabled(bool enabled) noexcept {
    superblocks_enabled_ = enabled;
    FlushSuperblocks();
  }
  [[nodiscard]] bool superblocks_enabled() const noexcept {
    return superblocks_enabled_;
  }
  /// Process-wide default applied to newly constructed CPUs, mirroring
  /// set_predecode_default (the differential suite toggles it around whole
  /// scenarios; TargetConfig/FleetConfig knobs disable it per campaign).
  static void set_superblocks_default(bool enabled) noexcept {
    superblocks_default_ = enabled;
  }
  [[nodiscard]] static bool superblocks_default() noexcept {
    return superblocks_default_;
  }
  void FlushSuperblocks() noexcept;

  // --- Block links ----------------------------------------------------------
  // Direct-branch terminators (jmp/jz/jnz, call/bl with static targets)
  // chain straight into the compiled successor block instead of returning to
  // the dispatch loop, after re-making every check a fresh entry makes.
  // Disabling unlinks everything (links live inside the flushed blocks).
  void set_block_links_enabled(bool enabled) noexcept {
    block_links_enabled_ = enabled;
    FlushSuperblocks();
  }
  [[nodiscard]] bool block_links_enabled() const noexcept {
    return block_links_enabled_;
  }
  static void set_block_links_default(bool enabled) noexcept {
    block_links_default_ = enabled;
  }
  [[nodiscard]] static bool block_links_default() noexcept {
    return block_links_default_;
  }

  // --- Shared superblocks ---------------------------------------------------
  // Compiled blocks published to / imported from the process-wide
  // SharedSuperblockRegistry, keyed by the bound DecodePlan's content
  // identity (see vm/superblock.hpp). Only plan-backed segments share —
  // scratch and writable segments always compile privately.
  void set_shared_superblocks_enabled(bool enabled) noexcept {
    shared_superblocks_enabled_ = enabled;
    FlushSuperblocks();
  }
  [[nodiscard]] bool shared_superblocks_enabled() const noexcept {
    return shared_superblocks_enabled_;
  }
  static void set_shared_superblocks_default(bool enabled) noexcept {
    shared_superblocks_default_ = enabled;
  }
  [[nodiscard]] static bool shared_superblocks_default() noexcept {
    return shared_superblocks_default_;
  }

  // --- Snapshot state (loader::Snapshot) ------------------------------------
  /// Architectural state a snapshot must capture to make a later
  /// RestoreState indistinguishable from a fresh boot: registers, pc,
  /// flags, the retired-instruction counter, the shadow stack and the event
  /// log. Host functions, breakpoints and configuration knobs survive the
  /// restore untouched.
  struct State {
    std::array<std::uint32_t, 16> regs{};
    std::uint32_t pc = 0;
    bool zf = false;
    std::uint64_t steps = 0;
    std::vector<std::uint32_t> shadow;
    std::vector<Event> events;
  };
  [[nodiscard]] State SaveState() const;
  /// Restores saved state and clears everything transient (stop record,
  /// trace, pending breakpoint skip) so execution can start clean.
  void RestoreState(const State& state);

  [[nodiscard]] bool stopped() const noexcept {
    return stop_.reason != StopReason::kRunning;
  }
  [[nodiscard]] const StopInfo& stop_info() const noexcept { return stop_; }
  /// Clears the stop state so execution can continue (debugger `continue`).
  void ClearStop() noexcept { stop_.reason = StopReason::kRunning; }

  /// For host functions and the syscall layer: requests a stop that Run()
  /// honours after the current instruction completes.
  void RequestStop(StopReason reason, std::string detail);
  void SetExitCode(std::uint32_t code) noexcept { stop_.exit_code = code; }

  // --- Breakpoints -------------------------------------------------------------
  // Compiled superblocks stop at breakpoint'd pcs, so any change to the set
  // drops them (rare, debugger-only operations).
  void AddBreakpoint(mem::GuestAddr addr) {
    breakpoints_.insert(addr);
    FlushSuperblocks();
  }
  void RemoveBreakpoint(mem::GuestAddr addr) {
    breakpoints_.erase(addr);
    FlushSuperblocks();
  }
  [[nodiscard]] bool HasBreakpoint(mem::GuestAddr addr) const noexcept {
    return breakpoints_.contains(addr);
  }

  // --- Shadow stack (CFI CaRE-flavoured return protection) -----------------
  /// When enabled, every call pushes its return address onto a hardware
  /// shadow stack and every return (ret / pop {…, pc}) must match the top
  /// entry — a mismatch aborts execution (§IV's hardware CFI model).
  void set_shadow_stack_enabled(bool enabled) noexcept {
    shadow_enabled_ = enabled;
  }
  [[nodiscard]] bool shadow_stack_enabled() const noexcept {
    return shadow_enabled_;
  }
  void ShadowPush(std::uint32_t return_addr) {
    if (shadow_enabled_) shadow_.push_back(return_addr);
  }
  void ShadowClear() noexcept { shadow_.clear(); }
  /// Validates a return target against the shadow stack; pops on match.
  /// Returns true when the return is allowed (or CFI is off).
  bool ShadowCheckReturn(std::uint32_t target) noexcept;

  // --- Edge coverage (AFL-style, for src/fuzz) ------------------------------
  /// Attaches a coverage bitmap: from now on every retired instruction and
  /// host-function transit records the (previous location ^ current
  /// location) edge with a saturating 8-bit counter. `index_mask` must be
  /// bitmap-size-1 for a power-of-two bitmap. Cheap enough to leave on —
  /// one hash, one xor, one increment per step; zero cost when detached.
  void AttachCoverage(std::uint8_t* bitmap, std::uint32_t index_mask) noexcept {
    cov_bitmap_ = bitmap;
    cov_mask_ = index_mask;
    cov_prev_ = 0;
  }
  void DetachCoverage() noexcept { cov_bitmap_ = nullptr; }
  [[nodiscard]] bool coverage_attached() const noexcept {
    return cov_bitmap_ != nullptr;
  }
  /// Resets the edge chain so the next step starts a fresh edge (used at
  /// input boundaries so coverage is a function of the input alone).
  void ResetCoverageEdge() noexcept { cov_prev_ = 0; }

  // --- Events -------------------------------------------------------------------
  void PushEvent(EventKind kind, std::string text);
  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  void ClearEvents() noexcept { events_.clear(); }

  [[nodiscard]] std::uint64_t steps_executed() const noexcept { return steps_; }

  // --- Execution trace ------------------------------------------------------
  /// Keeps the last `limit` executed instructions (0 disables). Used by the
  /// Debugger and the examples to show hijacked control flow gadget by
  /// gadget. Costs a string per step while enabled.
  void set_trace_limit(std::size_t limit);
  struct TraceEntry {
    mem::GuestAddr pc = 0;
    std::string text;  // disassembly or host-function name
  };
  [[nodiscard]] const std::deque<TraceEntry>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] std::string TraceString() const;

  /// One-line register dump ("eax=... ecx=..." / "r0=... r1=...").
  [[nodiscard]] std::string RegistersString() const;

 private:
  /// One direct-mapped predecode slot. kInstr slots are valid while the
  /// backing segment's generation matches `gen`; kHostFn slots are valid
  /// until RegisterHostFn flushes the cache (map nodes are pointer-stable).
  struct PredecodeEntry {
    enum class Kind : std::uint8_t { kEmpty, kInstr, kHostFn };
    mem::GuestAddr pc = 0;
    Kind kind = Kind::kEmpty;
    std::uint64_t gen = 0;
    const mem::Segment* seg = nullptr;
    isa::Instr instr{};
    const std::pair<std::string, HostFn>* host = nullptr;
  };
  static constexpr std::uint32_t kPredecodeSlots = 4096;  // power of two

  [[nodiscard]] PredecodeEntry& PredecodeSlot(mem::GuestAddr pc) noexcept {
    return predecode_[(pc >> predecode_shift_) & (kPredecodeSlots - 1)];
  }
  /// Predecode miss / legacy path: host-fn map lookup, permission-checked
  /// fetch, decode, execute — and (when the cache is on) slot fill.
  void StepSlow();
  void DispatchHostFn(const std::pair<std::string, HostFn>& fn);

  /// One bound shared plan. Valid while seg->generation() == gen.
  struct PlanBinding {
    const mem::Segment* seg = nullptr;
    std::uint64_t gen = 0;
    std::shared_ptr<const DecodePlan> plan;
  };
  /// Shared-plan lookup for the current pc inside `seg`, nullptr on a stale
  /// binding or an offset the plan could not decode.
  [[nodiscard]] const isa::Instr* PlannedInstr(const mem::Segment* seg) const noexcept;

  /// Superblock tier internals (vm/superblock.cpp). TrySuperblocks chains
  /// block executions from the current pc while blocks are available and
  /// the budget allows, returning true when at least one block ran (the
  /// Run() loop then re-evaluates its stop conditions). SuperblockFor
  /// compiles-or-fetches the block at `entry`; ExecSuperblock is the
  /// computed-goto executor (called with block == nullptr it returns the
  /// handler label table for the builder).
  bool TrySuperblocks(std::uint64_t remaining);
  const Superblock* SuperblockFor(const mem::Segment* seg,
                                  mem::GuestAddr entry);
  const void* const* ExecSuperblock(const Superblock* block,
                                    const mem::Segment* seg,
                                    std::uint64_t entry_gen,
                                    std::uint64_t steps_cap);
  /// Block-link resolution for a direct-branch op whose target is `target`:
  /// returns the compiled successor in the same segment (compiling it on
  /// first use, caching the edge in the op's link slots), or nullptr when
  /// the target is outside the segment, a host-function trampoline, or not
  /// worth block dispatch. Caller has already verified the generation.
  const Superblock* LinkedSuccessor(const SbOp& op, const mem::Segment* seg,
                                    mem::GuestAddr target);

  void Fault(std::string detail);
  void RecordCoverageEdge() noexcept {
    const std::uint32_t cur = CoverageLocation(pc_);
    std::uint8_t& cell = cov_bitmap_[(cur ^ cov_prev_) & cov_mask_];
    if (cell != 0xFF) ++cell;  // saturate instead of wrapping to 0
    cov_prev_ = cur >> 1;      // AFL's shift keeps A->B distinct from B->A
  }
  void ExecuteInstr(const isa::Instr& ins);
  void ExecVX86(const isa::Instr& ins, mem::GuestAddr pc_next);
  void ExecVARM(const isa::Instr& ins, mem::GuestAddr pc_next);

  isa::Arch arch_;
  mem::AddressSpace* space_;
  std::array<std::uint32_t, 16> regs_{};
  std::uint32_t pc_ = 0;
  bool zf_ = false;
  std::uint64_t steps_ = 0;
  StopInfo stop_;
  bool skip_breakpoint_once_ = false;
  std::map<mem::GuestAddr, std::pair<std::string, HostFn>> host_fns_;
  std::set<mem::GuestAddr> breakpoints_;
  std::vector<Event> events_;
  bool shadow_enabled_ = false;
  std::vector<std::uint32_t> shadow_;
  std::size_t trace_limit_ = 0;
  std::deque<TraceEntry> trace_;
  std::uint8_t* cov_bitmap_ = nullptr;
  std::uint32_t cov_mask_ = 0;
  std::uint32_t cov_prev_ = 0;
  std::vector<PredecodeEntry> predecode_;
  std::uint32_t predecode_shift_ = 0;  // 2 on VARM (4-byte aligned), 0 on VX86
  bool predecode_enabled_ = true;
  inline static bool predecode_default_ = true;
  std::vector<PlanBinding> plan_bindings_;  // one or two entries (.text, libc)
  bool shared_plans_enabled_ = true;
  inline static bool shared_plans_default_ = true;
  std::unique_ptr<SuperblockCache> sb_;  // lazily created on first Run
  bool superblocks_enabled_ = true;
  inline static bool superblocks_default_ = true;
  bool block_links_enabled_ = true;
  inline static bool block_links_default_ = true;
  bool shared_superblocks_enabled_ = true;
  inline static bool shared_superblocks_default_ = true;

#ifndef CONNLAB_OBS_DISABLED
  /// Per-CPU staging for the obs counters: fuzz targets issue tens of tiny
  /// Run() calls per exec, so per-Run shard adds are measurable. Plain
  /// member increments accumulate here and flush to the registry every
  /// kObsFlushRuns runs and at destruction — totals are exact whenever the
  /// CPU's owning System is gone (every current scrape point).
  struct ObsBatch {
    static constexpr std::uint32_t kFlushRuns = 256;
    std::uint64_t steps = 0;
    std::uint32_t runs = 0;
    std::uint32_t stops[16] = {};  // indexed by StopReason
  };
  ObsBatch obs_batch_;
  void FlushObsBatch() noexcept;
#endif
};

}  // namespace connlab::vm
