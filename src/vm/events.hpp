// Observable side effects of guest execution.
//
// A successful exploit in connlab is not a side effect on the host — it is a
// ShellSpawned event carrying provenance (what command, from which pc, at
// which step). The attack orchestrator classifies outcomes purely from these
// events plus the CPU's stop record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/segment.hpp"

namespace connlab::vm {

enum class EventKind : std::uint8_t {
  kShellSpawned,  // exec of a shell ("/bin/sh", "sh", ...) — RCE achieved
  kProcessExec,   // exec of some other program
  kExit,          // guest called exit()
  kWrite,         // guest wrote to a descriptor
  kCanaryAbort,   // stack-protector check failed (__stack_chk_fail analogue)
  kCfiViolation,  // shadow-stack return check failed (CFI CaRE analogue)
  kHeapCorruption,  // heap-integrity check failed (chunk canary / unlink)
  kNote,            // free-form diagnostic from host-implemented functions
};

std::string EventKindName(EventKind kind);

struct Event {
  EventKind kind = EventKind::kNote;
  std::string text;          // command line, written bytes, note, ...
  mem::GuestAddr pc = 0;     // guest pc at the time of the event
  std::uint64_t step = 0;    // instruction count at the time of the event

  [[nodiscard]] std::string ToString() const;
};

/// True if `path` names a shell for classification purposes. The simulated
/// execlp performs PATH-style resolution, so both "/bin/sh" and "sh" count.
bool IsShellPath(std::string_view path) noexcept;

// --- Coverage features ------------------------------------------------------
// The fuzzing subsystem observes guest execution through two channels: the
// per-step edge coverage the CPU records (see Cpu::AttachCoverage) and the
// events raised during a run. Both are folded into one AFL-style bitmap, so
// locations and event kinds need stable, well-mixed 32-bit identifiers.

/// Mixes a guest pc into a coverage location id (a cheap 32-bit finaliser —
/// consecutive pcs must land far apart in the bitmap).
std::uint32_t CoverageLocation(std::uint32_t pc) noexcept;

/// A coverage feature id for an event kind, disjoint from location ids with
/// overwhelming probability (distinct fixed salt).
std::uint32_t EventFeature(EventKind kind) noexcept;

}  // namespace connlab::vm
