// Observable side effects of guest execution.
//
// A successful exploit in connlab is not a side effect on the host — it is a
// ShellSpawned event carrying provenance (what command, from which pc, at
// which step). The attack orchestrator classifies outcomes purely from these
// events plus the CPU's stop record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/segment.hpp"

namespace connlab::vm {

enum class EventKind : std::uint8_t {
  kShellSpawned,  // exec of a shell ("/bin/sh", "sh", ...) — RCE achieved
  kProcessExec,   // exec of some other program
  kExit,          // guest called exit()
  kWrite,         // guest wrote to a descriptor
  kCanaryAbort,   // stack-protector check failed (__stack_chk_fail analogue)
  kNote,          // free-form diagnostic from host-implemented functions
};

std::string EventKindName(EventKind kind);

struct Event {
  EventKind kind = EventKind::kNote;
  std::string text;          // command line, written bytes, note, ...
  mem::GuestAddr pc = 0;     // guest pc at the time of the event
  std::uint64_t step = 0;    // instruction count at the time of the event

  [[nodiscard]] std::string ToString() const;
};

/// True if `path` names a shell for classification purposes. The simulated
/// execlp performs PATH-style resolution, so both "/bin/sh" and "sh" count.
bool IsShellPath(std::string_view path) noexcept;

}  // namespace connlab::vm
