// The simulated kernel surface: a handful of syscall numbers and the
// dispatcher the CPU calls on a `syscall` instruction.
//
// Conventions mirror 32-bit Linux flavours:
//   VX86: number in eax, arguments in ebx / ecx / edx (int 0x80 style)
//   VARM: number in r7, arguments in r0 / r1 / r2 (EABI style)
//
// exec of a shell is the paper's success condition (Connman runs as root, so
// the spawned shell is a root shell); the dispatcher turns it into a
// ShellSpawned event and stops the CPU.
#pragma once

#include <cstdint>

#include "src/util/status.hpp"

namespace connlab::vm {

class Cpu;  // defined in cpu.hpp

enum class Sys : std::uint32_t {
  kExit = 1,
  kWrite = 4,
  kExec = 11,  // execve analogue: arg0 = path cstring, arg1 = argv (may be 0)
};

/// Executes the syscall currently requested by `cpu`'s registers. On kExit /
/// kExec the CPU's stop state is set. Returns a non-OK status only for
/// faults (bad pointers) — which the CPU turns into a SIGSEGV-equivalent.
util::Status DispatchSyscall(Cpu& cpu);

}  // namespace connlab::vm
