#include "src/vm/syscalls.hpp"

#include "src/isa/isa.hpp"
#include "src/util/log.hpp"
#include "src/vm/cpu.hpp"

namespace connlab::vm {

util::Status DispatchSyscall(Cpu& cpu) {
  std::uint32_t number = 0;
  std::uint32_t arg0 = 0;
  std::uint32_t arg1 = 0;
  std::uint32_t arg2 = 0;
  if (cpu.arch() == isa::Arch::kVX86) {
    number = cpu.reg(isa::kEAX);
    arg0 = cpu.reg(isa::kEBX);
    arg1 = cpu.reg(isa::kECX);
    arg2 = cpu.reg(isa::kEDX);
  } else {
    number = cpu.reg(isa::kR7);
    arg0 = cpu.reg(isa::kR0);
    arg1 = cpu.reg(isa::kR1);
    arg2 = cpu.reg(isa::kR2);
  }

  switch (static_cast<Sys>(number)) {
    case Sys::kExit:
      cpu.SetExitCode(arg0);
      cpu.PushEvent(EventKind::kExit, "exit(" + std::to_string(arg0) + ")");
      cpu.RequestStop(StopReason::kExited, "exit syscall");
      return util::OkStatus();

    case Sys::kWrite: {
      // write(fd=arg0, buf=arg1, len=arg2). Contents surface as an event.
      const std::uint32_t len = arg2 > 4096 ? 4096 : arg2;
      CONNLAB_ASSIGN_OR_RETURN(util::Bytes data, cpu.space().ReadBytes(arg1, len));
      std::string text(data.begin(), data.end());
      cpu.PushEvent(EventKind::kWrite,
                    "fd=" + std::to_string(arg0) + " \"" + text + "\"");
      if (cpu.arch() == isa::Arch::kVX86) {
        cpu.set_reg(isa::kEAX, len);
      } else {
        cpu.set_reg(isa::kR0, len);
      }
      return util::OkStatus();
    }

    case Sys::kExec: {
      // exec(path, argv). The process image would be replaced; we stop the
      // CPU and record what was executed. Connman runs as root (the paper's
      // premise), so a shell here is a root shell.
      CONNLAB_ASSIGN_OR_RETURN(std::string path, cpu.space().ReadCString(arg0));
      (void)arg1;  // argv contents are not material to the simulation
      if (IsShellPath(path)) {
        cpu.PushEvent(EventKind::kShellSpawned,
                      "exec(\"" + path + "\") as uid=0 (root)");
        cpu.RequestStop(StopReason::kShellSpawned, "root shell: " + path);
      } else {
        cpu.PushEvent(EventKind::kProcessExec, "exec(\"" + path + "\")");
        cpu.RequestStop(StopReason::kProcessExec, "exec: " + path);
      }
      return util::OkStatus();
    }
  }
  return util::InvalidArgument("unknown syscall " + std::to_string(number));
}

}  // namespace connlab::vm
