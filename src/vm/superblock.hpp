// Superblock execution tier: lazily compiled straight-line guest regions
// executed as computed-goto threaded code.
//
// The interpreter (vm/cpu.cpp) pays a per-instruction tax even with warm
// predecode caches: the Run() loop's budget/breakpoint probes, the
// switch-dispatch in ExecVX86/ExecVARM, and a generation check per cached
// decode. A superblock hoists all of that to once per *block*: starting from
// a hot pc, the builder walks the instruction stream until the first control
// transfer (branch, call, ret, syscall, hlt), host-function trampoline,
// breakpoint'd pc, undecodable byte, segment end or the block-length cap,
// and records one threaded-code op per instruction — a direct handler
// address (GCC/Clang `&&label`), the decoded instruction, its pc /
// fall-through pc and its precomputed AFL coverage location. Execution then
// jumps handler-to-handler with no switch and no per-step cache probes.
//
// Three mechanisms keep execution inside threaded code across block
// boundaries:
//   - Block links: a direct branch terminator (jmp/jz/jnz, call/bl with a
//     static target) re-enters either its own block (the self-loop shape) or
//     a cached successor block in the same segment, after re-making every
//     check a fresh TrySuperblocks entry makes (generation, stop state,
//     budget, breakpoints). Links are per-CPU `mutable` fields on the branch
//     op; they only ever point into the same SegBlocks map, so generation
//     invalidation drops predecessor, successor and the edge together.
//   - Continuation after host functions and syscalls: a direct call whose
//     static target is a registered host-function trampoline compiles into a
//     call-host op that performs the call, dispatches the host function and
//     — when the host function returned to the fall-through pc and budget
//     still allows — resumes the block's remaining ops without leaving the
//     executor. Syscalls likewise continue in-block.
//   - A shared per-image block store (SharedSuperblockRegistry below): CPUs
//     with a valid DecodePlan binding publish their compiled blocks keyed by
//     the plan's content identity, and other CPUs booted from the same image
//     import a private copy instead of re-walking the instruction stream.
//
// Correctness contract (the differential suite enforces all of it, tier on
// vs off):
//   - Blocks are keyed to (segment, write generation). Any byte or
//     permission mutation — SMC, a W^X flip, a debugger poke, a snapshot
//     restore that copied pages back — moves the generation and the block
//     is dropped and lazily rebuilt from the new bytes.
//   - Store-class ops re-check the code segment's generation *mid-block*
//     and exit to the interpreter when the guest just overwrote its own
//     instruction stream (shellcode patching the sled it is running on).
//     Host functions and syscalls can write guest memory too, so the
//     continuation path re-checks the generation before resuming.
//   - Handlers mirror the interpreter byte-for-byte: same fault wording,
//     same pc at fault time (the fall-through pc, as ExecVX86/ExecVARM set
//     before executing), same shadow-stack CFI events and stop details,
//     same steps_ accounting, same AFL edge-coverage updates per retired
//     instruction (host-function transits included).
//   - Anything the block cannot reproduce exactly — tracing, a VARM
//     instruction reading or writing r15 outside the synced cases, an
//     instruction budget smaller than the block — falls back to the
//     interpreter, which remains the single source of truth.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/mem/segment.hpp"

namespace connlab::vm {

struct Superblock;

/// One threaded-code operation: everything its handler needs, precomputed.
struct SbOp {
  const void* handler = nullptr;  // &&label inside Cpu::ExecSuperblock
  isa::Instr instr{};
  mem::GuestAddr pc = 0;       // guest address of this instruction
  mem::GuestAddr pc_next = 0;  // fall-through address (pc + length)
  std::uint32_t cov_loc = 0;   // CoverageLocation(pc), hoisted out of the loop
  std::uint32_t cov_host = 0;  // CoverageLocation(host-fn pc) for call-host ops
  // Call-host ops: the host-function map node this call dispatches
  // (pointer-stable; really a const std::pair<std::string, Cpu::HostFn>*,
  // typed void* to keep this header free of cpu.hpp). Always nullptr in
  // SharedSuperblockRegistry canonicals — importers re-resolve locally.
  const void* host = nullptr;
  // Block-link slots on direct-branch terminators: the compiled successor
  // for the taken / fall-through target. Per-CPU scratch (hence mutable on a
  // const op): links point only into the same SegBlocks map, so the edge can
  // never outlive either endpoint. Never populated on registry canonicals.
  mutable const Superblock* link_taken = nullptr;
  mutable const Superblock* link_fall = nullptr;
};

/// A compiled straight-line region. `ops[0..count)` are real instructions;
/// when the last one falls through (cap / boundary ended the block, not a
/// control transfer) one extra exit sentinel op follows that re-syncs pc and
/// leaves the executor. `count < kMinOps` marks a negative-cache entry: this
/// entry pc is not worth block dispatch (host fn, lone instruction before a
/// branch, undecodable) — the interpreter path handles it.
struct Superblock {
  static constexpr std::uint32_t kMaxOps = 64;
  static constexpr std::uint32_t kMinOps = 2;

  mem::GuestAddr entry = 0;
  std::uint32_t count = 0;  // real instructions, excluding the exit sentinel
  std::vector<SbOp> ops;

  [[nodiscard]] bool usable() const noexcept { return count >= kMinOps; }
};

/// Per-CPU block store: a per-segment map of compiled blocks keyed to the
/// segment's write generation, fronted by a direct-mapped slot array for the
/// hot path. Never shared across threads (each worker owns its Cpu), so no
/// locking anywhere.
class SuperblockCache {
 public:
  /// Direct-mapped hot-path slot. Valid while `seg->generation() == gen`;
  /// a stale slot is overwritten without ever dereferencing `block`.
  struct Slot {
    mem::GuestAddr pc = 0;
    std::uint64_t gen = 0;
    const mem::Segment* seg = nullptr;
    const Superblock* block = nullptr;  // nullptr = empty slot
  };
  static constexpr std::uint32_t kSlots = 2048;  // power of two

  [[nodiscard]] Slot& SlotFor(mem::GuestAddr pc, std::uint32_t shift) noexcept {
    return slots_[(pc >> shift) & (kSlots - 1)];
  }

  /// Blocks compiled from one segment at one write generation. The map's
  /// nodes are pointer-stable, so Slot::block stays valid until the whole
  /// SegBlocks is invalidated.
  struct SegBlocks {
    const mem::Segment* seg = nullptr;
    std::uint64_t gen = 0;
    std::map<mem::GuestAddr, Superblock> blocks;
  };

  /// The block store for `seg` at its *current* generation: re-keys (and
  /// drops every stale block) when the segment was written or re-protected
  /// since the blocks were compiled.
  SegBlocks& For(const mem::Segment* seg) {
    for (SegBlocks& entry : segs_) {
      if (entry.seg != seg) continue;
      if (entry.gen != seg->generation()) {
        if (!entry.blocks.empty()) {
          ++invalidations;
          entry.blocks.clear();
        }
        entry.gen = seg->generation();
      }
      return entry;
    }
    segs_.push_back(SegBlocks{seg, seg->generation(), {}});
    return segs_.back();
  }

  /// Drops everything (host-fn registration, breakpoint changes, tier
  /// toggles — events that can invalidate blocks without a generation bump).
  void Flush() noexcept {
    segs_.clear();
    slots_.fill(Slot{});
  }

  // Tier counters, batched per-CPU like ObsBatch and flushed to the obs
  // registry as vm.superblock.{compiles,hits,fallbacks,invalidations,
  // links,resumes,imports}.
  std::uint64_t compiles = 0;       // usable blocks built
  std::uint64_t hits = 0;           // blocks dispatched
  std::uint64_t fallbacks = 0;      // entries that deferred to the interpreter
  std::uint64_t invalidations = 0;  // generation bumps that dropped blocks
  std::uint64_t links = 0;          // block-to-block link transitions taken
  std::uint64_t resumes = 0;        // in-block continuations after host fn/syscall
  std::uint64_t imports = 0;        // blocks copied from the shared registry

 private:
  std::vector<SegBlocks> segs_;  // a handful of segments per address space
  std::array<Slot, kSlots> slots_{};
};

/// Process-wide compiled-block store, mirroring DecodePlanRegistry: one
/// canonical copy of each compiled block per executable-segment *content*,
/// so N fuzz workers / fleet victim lanes booted from the same image walk
/// and pick-handler each hot region exactly once. Keyed by the bound
/// DecodePlan's identity (arch, base, size, content hash) plus the block's
/// entry pc — a diversity-reshuffled boot has different bytes (and usually a
/// different base), so it can never be served another layout's block.
///
/// Canonicals are scrubbed before publication: link slots and host-function
/// pointers are per-CPU state and are nulled; handler addresses are
/// function-local statics inside Cpu::ExecSuperblock, identical across every
/// CPU in the process, and coverage locations are a pure function of pc — so
/// the remaining payload is content-deterministic. Importers copy the
/// canonical into their private SegBlocks map (links re-grow locally) after
/// re-validating it against local state: no interior pc may be shadowed by a
/// local host function or breakpoint, and call-host ops must re-resolve
/// their trampoline from the local host-fn table.
///
/// Thread-safe like DecodePlanRegistry: lookups take a shared (reader) lock,
/// builds happen outside any lock, and when two workers race to publish the
/// same block the first insert wins and the loser's copy is dropped.
class SharedSuperblockRegistry {
 public:
  static SharedSuperblockRegistry& Instance();

  /// Canonical block for (image identity, entry), or nullptr when none has
  /// been published yet.
  [[nodiscard]] std::shared_ptr<const Superblock> Lookup(
      isa::Arch arch, mem::GuestAddr base, std::uint32_t size,
      std::uint64_t content_hash, mem::GuestAddr entry) const;

  /// Publishes a scrubbed canonical (first insert wins; later publishes of
  /// the same key are dropped — identical content compiles identically).
  void Publish(isa::Arch arch, mem::GuestAddr base, std::uint32_t size,
               std::uint64_t content_hash, mem::GuestAddr entry,
               std::shared_ptr<const Superblock> block);

  struct Stats {
    std::uint64_t publishes = 0;  // canonicals inserted (cold compiles)
    std::uint64_t imports = 0;    // lookups served from a canonical
    std::size_t live_blocks = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Drops every canonical (tests; importers own private copies).
  void Clear();

 private:
  struct Key {
    std::uint8_t arch = 0;
    mem::GuestAddr base = 0;
    std::uint32_t size = 0;
    std::uint64_t hash = 0;
    mem::GuestAddr entry = 0;
    auto operator<=>(const Key&) const = default;
  };

  /// The diversity lab boots hundreds of unique layouts, each with many hot
  /// blocks; cap the registry and evict oldest-inserted so it cannot grow
  /// without bound (importers hold private copies, so eviction only costs a
  /// recompile).
  static constexpr std::size_t kMaxBlocks = 4096;

  mutable std::shared_mutex mu_;
  std::map<Key, std::shared_ptr<const Superblock>> blocks_;
  std::deque<Key> insertion_order_;
  std::atomic<std::uint64_t> publishes_{0};
  mutable std::atomic<std::uint64_t> imports_{0};  // counted in const Lookup
};

}  // namespace connlab::vm
