// Superblock execution tier: lazily compiled straight-line guest regions
// executed as computed-goto threaded code.
//
// The interpreter (vm/cpu.cpp) pays a per-instruction tax even with warm
// predecode caches: the Run() loop's budget/breakpoint probes, the
// switch-dispatch in ExecVX86/ExecVARM, and a generation check per cached
// decode. A superblock hoists all of that to once per *block*: starting from
// a hot pc, the builder walks the instruction stream until the first control
// transfer (branch, call, ret, syscall, hlt), host-function trampoline,
// breakpoint'd pc, undecodable byte, segment end or the block-length cap,
// and records one threaded-code op per instruction — a direct handler
// address (GCC/Clang `&&label`), the decoded instruction, its pc /
// fall-through pc and its precomputed AFL coverage location. Execution then
// jumps handler-to-handler with no switch and no per-step cache probes.
//
// Correctness contract (the differential suite enforces all of it, tier on
// vs off):
//   - Blocks are keyed to (segment, write generation). Any byte or
//     permission mutation — SMC, a W^X flip, a debugger poke, a snapshot
//     restore that copied pages back — moves the generation and the block
//     is dropped and lazily rebuilt from the new bytes.
//   - Store-class ops re-check the code segment's generation *mid-block*
//     and exit to the interpreter when the guest just overwrote its own
//     instruction stream (shellcode patching the sled it is running on).
//   - Handlers mirror the interpreter byte-for-byte: same fault wording,
//     same pc at fault time (the fall-through pc, as ExecVX86/ExecVARM set
//     before executing), same shadow-stack CFI events and stop details,
//     same steps_ accounting, same AFL edge-coverage updates per retired
//     instruction.
//   - Anything the block cannot reproduce exactly — tracing, a VARM
//     instruction reading or writing r15 outside the synced cases, an
//     instruction budget smaller than the block — falls back to the
//     interpreter, which remains the single source of truth.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "src/isa/isa.hpp"
#include "src/mem/segment.hpp"

namespace connlab::vm {

/// One threaded-code operation: everything its handler needs, precomputed.
struct SbOp {
  const void* handler = nullptr;  // &&label inside Cpu::ExecSuperblock
  isa::Instr instr{};
  mem::GuestAddr pc = 0;       // guest address of this instruction
  mem::GuestAddr pc_next = 0;  // fall-through address (pc + length)
  std::uint32_t cov_loc = 0;   // CoverageLocation(pc), hoisted out of the loop
};

/// A compiled straight-line region. `ops[0..count)` are real instructions;
/// when the last one falls through (cap / boundary ended the block, not a
/// control transfer) one extra exit sentinel op follows that re-syncs pc and
/// leaves the executor. `count < kMinOps` marks a negative-cache entry: this
/// entry pc is not worth block dispatch (host fn, lone instruction before a
/// branch, undecodable) — the interpreter path handles it.
struct Superblock {
  static constexpr std::uint32_t kMaxOps = 64;
  static constexpr std::uint32_t kMinOps = 2;

  mem::GuestAddr entry = 0;
  std::uint32_t count = 0;  // real instructions, excluding the exit sentinel
  std::vector<SbOp> ops;

  [[nodiscard]] bool usable() const noexcept { return count >= kMinOps; }
};

/// Per-CPU block store: a per-segment map of compiled blocks keyed to the
/// segment's write generation, fronted by a direct-mapped slot array for the
/// hot path. Never shared across threads (each worker owns its Cpu), so no
/// locking anywhere.
class SuperblockCache {
 public:
  /// Direct-mapped hot-path slot. Valid while `seg->generation() == gen`;
  /// a stale slot is overwritten without ever dereferencing `block`.
  struct Slot {
    mem::GuestAddr pc = 0;
    std::uint64_t gen = 0;
    const mem::Segment* seg = nullptr;
    const Superblock* block = nullptr;  // nullptr = empty slot
  };
  static constexpr std::uint32_t kSlots = 2048;  // power of two

  [[nodiscard]] Slot& SlotFor(mem::GuestAddr pc, std::uint32_t shift) noexcept {
    return slots_[(pc >> shift) & (kSlots - 1)];
  }

  /// Blocks compiled from one segment at one write generation. The map's
  /// nodes are pointer-stable, so Slot::block stays valid until the whole
  /// SegBlocks is invalidated.
  struct SegBlocks {
    const mem::Segment* seg = nullptr;
    std::uint64_t gen = 0;
    std::map<mem::GuestAddr, Superblock> blocks;
  };

  /// The block store for `seg` at its *current* generation: re-keys (and
  /// drops every stale block) when the segment was written or re-protected
  /// since the blocks were compiled.
  SegBlocks& For(const mem::Segment* seg) {
    for (SegBlocks& entry : segs_) {
      if (entry.seg != seg) continue;
      if (entry.gen != seg->generation()) {
        if (!entry.blocks.empty()) {
          ++invalidations;
          entry.blocks.clear();
        }
        entry.gen = seg->generation();
      }
      return entry;
    }
    segs_.push_back(SegBlocks{seg, seg->generation(), {}});
    return segs_.back();
  }

  /// Drops everything (host-fn registration, breakpoint changes, tier
  /// toggles — events that can invalidate blocks without a generation bump).
  void Flush() noexcept {
    segs_.clear();
    slots_.fill(Slot{});
  }

  // Tier counters, batched per-CPU like ObsBatch and flushed to the obs
  // registry as vm.superblock.{compiles,hits,fallbacks,invalidations}.
  std::uint64_t compiles = 0;       // usable blocks built
  std::uint64_t hits = 0;           // blocks dispatched
  std::uint64_t fallbacks = 0;      // entries that deferred to the interpreter
  std::uint64_t invalidations = 0;  // generation bumps that dropped blocks

 private:
  std::vector<SegBlocks> segs_;  // a handful of segments per address space
  std::array<Slot, kSlots> slots_{};
};

}  // namespace connlab::vm
