#include "src/vm/events.hpp"

#include <cstdio>

namespace connlab::vm {

std::string EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kShellSpawned: return "shell-spawned";
    case EventKind::kProcessExec: return "process-exec";
    case EventKind::kExit: return "exit";
    case EventKind::kWrite: return "write";
    case EventKind::kCanaryAbort: return "canary-abort";
    case EventKind::kCfiViolation: return "cfi-violation";
    case EventKind::kHeapCorruption: return "heap-corruption";
    case EventKind::kNote: return "note";
  }
  return "?";
}

std::string Event::ToString() const {
  char head[64];
  std::snprintf(head, sizeof(head), "[step %llu pc=0x%08x] ",
                static_cast<unsigned long long>(step), pc);
  return head + (EventKindName(kind) + ": " + text);
}

bool IsShellPath(std::string_view path) noexcept {
  if (path == "sh" || path == "/bin/sh" || path == "/bin/bash" ||
      path == "bash" || path == "/bin/dash" || path == "dash") {
    return true;
  }
  // Anything whose final path component is "sh" also counts.
  const std::size_t slash = path.rfind('/');
  return slash != std::string_view::npos && path.substr(slash + 1) == "sh";
}

namespace {
// Murmur3-style 32-bit finaliser: full avalanche, so pc and pc+1 map to
// unrelated bitmap cells.
std::uint32_t Mix32(std::uint32_t h) noexcept {
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}
}  // namespace

std::uint32_t CoverageLocation(std::uint32_t pc) noexcept { return Mix32(pc); }

std::uint32_t EventFeature(EventKind kind) noexcept {
  return Mix32(0x5eed0000u | static_cast<std::uint32_t>(kind));
}

}  // namespace connlab::vm
