#include "src/vm/events.hpp"

#include <cstdio>

namespace connlab::vm {

std::string EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kShellSpawned: return "shell-spawned";
    case EventKind::kProcessExec: return "process-exec";
    case EventKind::kExit: return "exit";
    case EventKind::kWrite: return "write";
    case EventKind::kCanaryAbort: return "canary-abort";
    case EventKind::kNote: return "note";
  }
  return "?";
}

std::string Event::ToString() const {
  char head[64];
  std::snprintf(head, sizeof(head), "[step %llu pc=0x%08x] ",
                static_cast<unsigned long long>(step), pc);
  return head + (EventKindName(kind) + ": " + text);
}

bool IsShellPath(std::string_view path) noexcept {
  if (path == "sh" || path == "/bin/sh" || path == "/bin/bash" ||
      path == "bash" || path == "/bin/dash" || path == "dash") {
    return true;
  }
  // Anything whose final path component is "sh" also counts.
  const std::size_t slash = path.rfind('/');
  return slash != std::string_view::npos && path.substr(slash + 1) == "sh";
}

}  // namespace connlab::vm
