// Shared immutable decode plans: one read-only, pc-indexed table of
// predecoded instructions per executable-segment *content*, published via
// shared_ptr so every CPU executing the same booted image — N fuzz-campaign
// workers, the defense grid's victims, diversity-lab restores — decodes the
// text exactly once instead of once per CPU.
//
// A plan is built from a segment's bytes at a point in time and never
// mutated afterwards; sharing it across threads needs no locking beyond the
// registry's build mutex. Validity is the caller's problem and mirrors the
// per-CPU predecode cache: a CPU binds a plan to a (segment, write
// generation) pair and stops consulting it the moment the generation moves
// (self-modifying code, mprotect, a snapshot restore that rewrote bytes).
// The per-CPU 4096-slot cache remains the write-path overlay: segments that
// actually get written (shellcode on an RWX stack) re-decode through it,
// with identical fault wording and step counts.
//
// Host-function trampolines are deliberately NOT part of a plan: host-fn
// tables are per-System state, and the CPU consults them before the plan,
// so a shared plan can never shadow a trampoline.
//
// VX86 plans hold an entry per byte offset (ROP gadgets enter instructions
// at unintended offsets); VARM plans hold one per 4-byte word. Offsets
// whose bytes do not decode — or whose instruction would run off the
// segment — hold an invalid entry, and execution falls back to the ordinary
// fetch/decode path so fault details stay byte-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "src/isa/isa.hpp"
#include "src/mem/segment.hpp"

namespace connlab::vm {

class DecodePlan {
 public:
  /// Content identity used to key plans and to re-arm bindings after a
  /// snapshot restore. FNV-1a over the raw bytes.
  [[nodiscard]] static std::uint64_t HashContent(util::ByteSpan bytes) noexcept;

  /// Decodes every reachable offset of `seg` as it is right now.
  [[nodiscard]] static std::shared_ptr<const DecodePlan> Build(
      isa::Arch arch, const mem::Segment& seg);

  [[nodiscard]] isa::Arch arch() const noexcept { return arch_; }
  [[nodiscard]] mem::GuestAddr base() const noexcept { return base_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t content_hash() const noexcept { return hash_; }
  [[nodiscard]] std::uint32_t valid_entries() const noexcept { return valid_; }

  [[nodiscard]] bool Covers(mem::GuestAddr pc) const noexcept {
    return pc >= base_ && pc - base_ < size_;
  }

  /// Predecoded instruction at `pc`, or nullptr when the offset does not
  /// decode (caller falls back to the ordinary fetch/decode path). VARM
  /// lookups at unaligned pcs also return nullptr.
  [[nodiscard]] const isa::Instr* Lookup(mem::GuestAddr pc) const noexcept {
    const std::uint32_t off = pc - base_;
    if (off >= size_) return nullptr;
    const isa::Instr* entry;
    if (arch_ == isa::Arch::kVARM) {
      if ((off & 3u) != 0) return nullptr;
      entry = &entries_[off >> 2];
    } else {
      entry = &entries_[off];
    }
    return entry->length != 0 ? entry : nullptr;
  }

 private:
  DecodePlan() = default;

  isa::Arch arch_ = isa::Arch::kVX86;
  mem::GuestAddr base_ = 0;
  std::uint32_t size_ = 0;
  std::uint64_t hash_ = 0;
  std::uint32_t valid_ = 0;
  std::vector<isa::Instr> entries_;  // length == 0 marks an invalid offset
};

/// Process-wide plan store. Keyed by (arch, name, base, size, content hash),
/// so two Systems booted from the same seed share one plan, while a
/// diversity-reshuffled boot — different bytes, different hash — gets its
/// own and can never be served a stale decode. Thread-safe: multi-worker
/// campaigns boot concurrently, and the hot lookup path takes only a shared
/// (reader) lock — N workers re-booting after crashes never serialise on
/// each other. Cold builds happen outside any lock; when two workers race
/// to build the same image, one build wins the insert and the loser shares
/// it (a rare duplicate decode is cheaper than serialising every boot).
class DecodePlanRegistry {
 public:
  static DecodePlanRegistry& Instance();

  /// Returns the plan for this segment's current content, building it on
  /// first request. Identical content => identical shared_ptr.
  std::shared_ptr<const DecodePlan> GetOrBuild(isa::Arch arch,
                                               const mem::Segment& seg);

  struct Stats {
    std::uint64_t builds = 0;  // plans constructed (cold)
    std::uint64_t shares = 0;  // requests served from an existing plan
    std::size_t live_plans = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Drops every cached plan (tests; bound CPUs keep theirs alive via
  /// shared_ptr).
  void Clear();

 private:
  struct Key {
    std::uint8_t arch = 0;
    mem::GuestAddr base = 0;
    std::uint32_t size = 0;
    std::uint64_t hash = 0;
    std::string name;
    auto operator<=>(const Key&) const = default;
  };

  /// The diversity lab boots hundreds of unique layouts; cap the registry
  /// and evict oldest-inserted so it cannot grow without bound. Eviction is
  /// safe: live bindings hold their own shared_ptr.
  static constexpr std::size_t kMaxPlans = 128;

  mutable std::shared_mutex mu_;
  std::map<Key, std::shared_ptr<const DecodePlan>> plans_;
  std::deque<Key> insertion_order_;
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> shares_{0};
};

}  // namespace connlab::vm
