// Fleet campaign: the DAEDALUS question at population scale.
//
// One attacker profiles ONE captured device, then the rogue AP races its
// pre-built volley against a churning fleet of simulated IoT clients —
// every victim a snapshot-restore boot of one of 2^b diversity variants
// with its own sampled mitigation policy. The deliverable is the survival
// curve: compromised fraction vs diversity entropy, at whatever population
// the flag asks for (a million victims runs in well under two minutes).
//
//   ./examples/fleet_campaign [--victims=N] [--seed=S] [--entropy=0,2,4,8]
//                             [--sweep-workers=N] [--json=PATH]
//                             [--metrics=PATH] [--trace=PATH]
//                             [--no-superblocks] [--no-block-links]
//                             [--no-shared-blocks] [--help]
//
// Execution-tier knobs (all on by default; the curve and its digests are
// identical either way — A/B-measurement knobs, not behaviour switches):
//   --no-superblocks   pin victim-lane CPUs to the plain interpreter
//   --no-block-links   bare superblocks: no block chaining / continuation
//   --no-shared-blocks compile blocks per-CPU; skip the per-image registry
//
// --sweep-workers spreads the sweep's (entropy, bug class) campaigns across
// N threads (0 = one per hardware core, 1 = serial) — the curve and its
// digest are identical either way.
//
// Deterministic: the same seed reproduces the same curve digest, event for
// event. The run exits non-zero if the curve misbehaves (monoculture not
// compromised, or compromise not shrinking as entropy grows).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/fleet/campaign.hpp"
#include "src/fleet/report.hpp"
#include "src/obs/obs.hpp"

using namespace connlab;

namespace {

int Fail(const util::Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
  return 1;
}

std::string TakeFlag(std::vector<std::string>& args, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (it->rfind(prefix, 0) == 0) {
      std::string value = it->substr(prefix.size());
      args.erase(it);
      return value;
    }
  }
  return {};
}

bool TakeBareFlag(std::vector<std::string>& args, const std::string& name) {
  const std::string flag = "--" + name;
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

void PrintUsage() {
  std::printf(
      "usage: fleet_campaign [--victims=N] [--seed=S] [--entropy=0,2,4,8]\n"
      "                      [--sweep-workers=N] [--json=PATH]\n"
      "                      [--metrics=PATH] [--trace=PATH]\n"
      "                      [--no-superblocks] [--no-block-links]\n"
      "                      [--no-shared-blocks] [--help]\n"
      "\n"
      "  --victims=N         fleet size per sweep point (default 20000)\n"
      "  --seed=S            campaign seed (default 42); same seed, same\n"
      "                      curve digest\n"
      "  --entropy=LIST      diversity-bits sweep points (default 0,2,4,6,8)\n"
      "  --sweep-workers=N   threads for the sweep (0 = one per core,\n"
      "                      1 = serial); digest identical either way\n"
      "  --json=PATH         write the survival curve as JSON\n"
      "  --metrics=PATH      flat JSON dump of the metrics registry\n"
      "  --trace=PATH        chrome://tracing JSON of the run\n"
      "\n"
      "execution-tier knobs (all on by default; curve and digests are\n"
      "identical either way — A/B measurement knobs only):\n"
      "  --no-superblocks    plain interpreter, no threaded-code tier\n"
      "  --no-block-links    bare superblocks: no block-to-block linking,\n"
      "                      no host-fn/syscall continuation\n"
      "  --no-shared-blocks  per-CPU block compilation only; skip the\n"
      "                      process-wide per-image block registry\n");
}

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!item.empty()) out.push_back(std::atoi(item.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int FinishObs(obs::Scope& scope, const std::string& metrics_path,
              const std::string& trace_path) {
  if (!metrics_path.empty()) {
    auto status = scope.WriteMetricsJson(metrics_path);
    if (!status.ok()) return Fail(status);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    auto status = scope.WriteTraceJson(trace_path);
    if (!status.ok()) return Fail(status);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (TakeBareFlag(args, "help")) {
    PrintUsage();
    return 0;
  }
  const std::string victims_flag = TakeFlag(args, "victims");
  const std::string seed_flag = TakeFlag(args, "seed");
  const std::string entropy_flag = TakeFlag(args, "entropy");
  const std::string sweep_workers_flag = TakeFlag(args, "sweep-workers");
  const std::string json_path = TakeFlag(args, "json");
  const std::string metrics_path = TakeFlag(args, "metrics");
  const std::string trace_path = TakeFlag(args, "trace");
  const bool no_superblocks = TakeBareFlag(args, "no-superblocks");
  const bool no_block_links = TakeBareFlag(args, "no-block-links");
  const bool no_shared_blocks = TakeBareFlag(args, "no-shared-blocks");
  obs::Scope scope(obs::ScopeOptions{.trace = !trace_path.empty()});

  fleet::FleetConfig config;
  config.superblocks = !no_superblocks;
  config.block_links = !no_block_links;
  config.shared_blocks = !no_shared_blocks;
  config.victims = victims_flag.empty()
                       ? 20000
                       : std::strtoull(victims_flag.c_str(), nullptr, 10);
  config.seed = seed_flag.empty()
                    ? 42
                    : std::strtoull(seed_flag.c_str(), nullptr, 10);
  std::vector<int> entropy =
      entropy_flag.empty() ? std::vector<int>{0, 2, 4, 6, 8}
                           : ParseIntList(entropy_flag);
  const std::size_t sweep_workers =
      sweep_workers_flag.empty()
          ? 1
          : static_cast<std::size_t>(
                std::strtoull(sweep_workers_flag.c_str(), nullptr, 10));

  std::printf("connlab fleet campaign — one profiled exploit vs %llu victims\n",
              static_cast<unsigned long long>(config.victims));
  std::printf(
      "=============================================================\n\n");
  std::printf(
      "population: %.0f%% canary, %.0f%% CFI, diversity swept below; the\n"
      "attacker races %.0f%% of queries with a volley profiled from one\n"
      "captured device (variant %u).\n\n",
      config.population.p_canary * 100.0, config.population.p_cfi * 100.0,
      config.attack_rate * 100.0, config.profiled_variant);

  auto curve = fleet::RunSurvivalSweep(config, entropy, sweep_workers);
  if (!curve.ok()) return Fail(curve.status());

  // The last (highest-entropy) point's full campaign reports — one per
  // bug class, so the per-class bookkeeping is visible, not just the curve.
  for (const fleet::BugClass bug_class :
       {fleet::BugClass::kStackSmash, fleet::BugClass::kPointerLoop,
        fleet::BugClass::kHeapMetadata}) {
    fleet::FleetConfig last = config;
    last.population.diversity_bits = entropy.back();
    last.bug_class = bug_class;
    auto result = fleet::RunFleetCampaign(last);
    if (!result.ok()) return Fail(result.status());
    std::printf("%s\n", fleet::RenderFleetReport(result.value()).c_str());
  }

  std::printf("survival curve (fraction of the fleet the one exploit gets):\n");
  std::printf("%s\n", fleet::RenderSurvivalCurve(curve.value()).c_str());
  const std::uint64_t digest = fleet::CurveDigest(curve.value());
  std::printf("curve digest: %016llx\n",
              static_cast<unsigned long long>(digest));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << fleet::SurvivalCurveJson(curve.value(), config.seed,
                                    config.victims);
    std::printf("curve written to %s\n", json_path.c_str());
  }

  // Self-check: the monoculture must fall, and diversity must help —
  // compromise may never grow as entropy does (same seed throughout).
  const auto& points = curve.value();
  int bad = 0;
  if (!points.empty() && points.front().diversity_bits == 0 &&
      points.front().compromised == 0) {
    std::printf("FAIL: monoculture survived a matched-profile exploit\n");
    ++bad;
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].compromised_fraction >
        points[i - 1].compromised_fraction) {
      std::printf("FAIL: compromise grew from %db to %db\n",
                  points[i - 1].diversity_bits, points[i].diversity_bits);
      ++bad;
    }
  }
  // Per-class shape: the pointer loop DoSes regardless of entropy, and the
  // heap class never shells through the default W^X base — entropy starves
  // only the address-dependent stack smash.
  for (const auto& p : points) {
    if (p.loop_crashed == 0) {
      std::printf("FAIL: pointer loop stopped DoSing at %db\n",
                  p.diversity_bits);
      ++bad;
    }
    if (p.heap_compromised != 0) {
      std::printf("FAIL: heap class shelled through W^X at %db\n",
                  p.diversity_bits);
      ++bad;
    }
    if (p.heap_crashed + p.heap_trapped == 0) {
      std::printf("FAIL: heap class had no effect at %db\n",
                  p.diversity_bits);
      ++bad;
    }
  }
  if (points.size() > 1) {
    const double first = points.front().loop_crashed_fraction;
    const double last = points.back().loop_crashed_fraction;
    if (last < first - 0.1 || last > first + 0.1) {
      std::printf("FAIL: pointer-loop DoS fraction moved with entropy "
                  "(%0.3f -> %0.3f)\n", first, last);
      ++bad;
    }
  }
  if (bad == 0) std::printf("\nself-check: survival curve OK\n");

  const int obs_rc = FinishObs(scope, metrics_path, trace_path);
  return bad > 0 ? 1 : obs_rc;
}
