// Defense lab: the pluggable mitigation subsystem (src/defense/) evaluated
// against the full six-attack matrix.
//
// Four demonstrations:
//   1. The defense grid — all six paper exploits fired at victims hardened
//      with each standard policy {none, canary, CFI, diversity, all}, with
//      the per-row diagnosis of *why* each blocked exploit missed.
//   2. CFI in close-up — the shadow stack rejecting a hijacked return and
//      stopping the CPU with the dedicated CfiViolation stop reason.
//   3. The canary brute-force-resistance knob — empirically recovering a
//      narrowed guard, volley by volley, and the cost curve vs width.
//   4. Stochastic diversity — the same exploit volley fired at N freshly
//      re-randomised boots; success drops from certainty to a probability.
//
//   ./examples/defense_lab [--trace=t.json] [--metrics=m.json]
//
//   --trace=PATH    chrome://tracing / Perfetto JSON of the whole lab run
//   --metrics=PATH  scraped metrics registry (grid cells, traps, boots, ...)
#include <cstdio>
#include <string>
#include <vector>

#include "src/attack/matrix.hpp"
#include "src/attack/report.hpp"
#include "src/defense/canary.hpp"
#include "src/defense/cfi.hpp"
#include "src/defense/diversity.hpp"
#include "src/defense/mitigation.hpp"
#include "src/obs/obs.hpp"
#include "src/vm/cpu.hpp"

using namespace connlab;

namespace {

int Fail(const util::Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
  return 1;
}

std::string TakeFlag(std::vector<std::string>& args, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (it->rfind(prefix, 0) == 0) {
      std::string value = it->substr(prefix.size());
      args.erase(it);
      return value;
    }
  }
  return {};
}

/// Writes the scope's exports (and prints the table) before main returns.
int FinishObs(obs::Scope& scope, const std::string& metrics_path,
              const std::string& trace_path) {
  if (!metrics_path.empty()) {
    auto status = scope.WriteMetricsJson(metrics_path);
    if (!status.ok()) return Fail(status);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    auto status = scope.WriteTraceJson(trace_path);
    if (!status.ok()) return Fail(status);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty() || !trace_path.empty()) {
    std::printf("\nrun metrics:\n%s", scope.RenderTable().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const std::string trace_path = TakeFlag(args, "trace");
  const std::string metrics_path = TakeFlag(args, "metrics");
  obs::Scope scope(obs::ScopeOptions{.trace = !trace_path.empty()});
  std::printf("connlab defense lab — mitigations vs the six-attack matrix\n");
  std::printf("==========================================================\n\n");
  for (const defense::DefensePolicy& policy : defense::StandardPolicies()) {
    std::printf("%-10s", policy.Label().c_str());
    if (policy.empty()) {
      std::printf(" (stock firmware)\n");
      continue;
    }
    std::printf("\n");
    for (const auto& m : policy.mitigations()) {
      std::printf("    - %s\n", m->Describe().c_str());
    }
  }
  std::printf("\n");

  // --- 1. The grid ----------------------------------------------------------
  auto grid = attack::RunDefenseGrid();
  if (!grid.ok()) return Fail(grid.status());
  std::printf("%s\n", attack::RenderDefenseGrid(
                          grid.value(), "six attacks x defense policies")
                          .c_str());
  std::printf("%s\n", attack::RenderMatrixTable(grid.value(),
                                                "full grid, row per scenario")
                          .c_str());

  // Sanity over the grid, per bug class. dnsproxy (stack smash): undefended
  // rows all shell, CFI/canary/all block everything, diversity blocks the
  // address-reuse attacks (3-6) but honestly NOT the stack-targeted
  // injections (1-2), and heap-integrity catches *nothing* (wrong class).
  // resolvd (pointer loop): never a shell under any policy — the DoS crash
  // is the payoff. camstored (heap metadata): shells under every stack
  // defense and falls only to heap-integrity.
  int bad_rows = 0;
  for (const attack::AttackResult& r : grid.value()) {
    bool expect_shell = false;
    if (r.service == "dnsproxy") {
      const bool injection =
          r.technique == exploit::Technique::kCodeInjection;
      if (r.defense == "none") expect_shell = true;
      if (r.defense == "diversity") expect_shell = injection;
      if (r.defense == "heap-integrity") expect_shell = true;
    } else if (r.service == "camstored") {
      expect_shell = r.defense != "heap-integrity";
    }  // resolvd: expect_shell stays false everywhere
    if (r.shell != expect_shell) {
      std::printf("UNEXPECTED: %s / defense=%s -> %s\n", r.RowLabel().c_str(),
                  r.defense.c_str(), r.OutcomeLabel().c_str());
      ++bad_rows;
    }
    if (r.service == "resolvd" && !r.crash) {
      std::printf("UNEXPECTED: %s / defense=%s should DoS-crash\n",
                  r.RowLabel().c_str(), r.defense.c_str());
      ++bad_rows;
    }
  }
  if (bad_rows != 0) return 1;
  std::printf("grid shape verified: stack class falls to canary/CFI (and "
              "partly diversity)\nbut sails past heap-integrity; the pointer "
              "loop only ever DoSes; the heap\nclass ignores every stack "
              "defense and dies to heap-integrity alone.\n\n");

  // --- 2. CFI close-up ------------------------------------------------------
  std::printf("== CFI close-up: shadow stack vs the x86 ROP chain ==\n");
  attack::ScenarioConfig cfi_demo;
  cfi_demo.arch = isa::Arch::kVX86;
  cfi_demo.prot = loader::ProtectionConfig::WxAslr();
  cfi_demo.defense = defense::DefensePolicy::Cfi();
  auto cfi_result = attack::RunControlledScenario(cfi_demo);
  if (!cfi_result.ok()) return Fail(cfi_result.status());
  std::printf("outcome    : %s\n", cfi_result.value().OutcomeLabel().c_str());
  std::printf("stop detail: %s\n", cfi_result.value().detail.c_str());
  std::printf("diagnosis  : %s\n\n", cfi_result.value().FailureLabel().c_str());
  if (cfi_result.value().kind !=
      connman::ProxyOutcome::Kind::kCfiViolation) {
    std::printf("expected a CfiViolation stop!\n");
    return 1;
  }

  // --- 3. Canary brute-force knob ------------------------------------------
  std::printf("== canary brute-force resistance (narrowed guards) ==\n");
  std::printf("%6s %12s %10s %10s %6s\n", "bits", "expected", "attempts",
              "recovered", "shell");
  std::printf("%s\n", std::string(48, '-').c_str());
  for (int bits : {2, 4, 8}) {
    auto bf = defense::BruteForceCanary(isa::Arch::kVX86, bits,
                                        /*target_seed=*/4242,
                                        /*max_attempts=*/1u << bits);
    if (!bf.ok()) return Fail(bf.status());
    const defense::StackCanary knob(bits);
    std::printf("%6d %12.0f %10llu %10s %6s\n", bits,
                knob.ExpectedBruteForceAttempts(),
                static_cast<unsigned long long>(bf.value().attempts),
                bf.value().recovered ? "yes" : "no",
                bf.value().shell ? "yes" : "no");
    if (!bf.value().recovered) {
      std::printf("narrowed canary should be recoverable!\n");
      return 1;
    }
  }
  std::printf("cost doubles per bit; the default 32-bit guard needs ~2^31\n"
              "volleys against a non-respawning randomised target.\n\n");

  // --- 4. Stochastic diversity ---------------------------------------------
  std::printf("== stochastic diversity: survival over re-randomised boots ==\n");
  std::printf("%-6s %-16s %7s %7s %8s %7s %9s\n", "arch", "attack", "boots",
              "shells", "crashes", "other", "survival");
  std::printf("%s\n", std::string(66, '-').c_str());
  struct DivRow {
    isa::Arch arch;
    loader::ProtectionConfig base;
    const char* label;
  };
  const DivRow rows[] = {
      {isa::Arch::kVX86, loader::ProtectionConfig::None(), "code-inject"},
      {isa::Arch::kVX86, loader::ProtectionConfig::WxOnly(), "ret2libc"},
      {isa::Arch::kVARM, loader::ProtectionConfig::WxOnly(), "gadget-execlp"},
      {isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), "rop-chain"},
  };
  for (const DivRow& row : rows) {
    auto stats = defense::MeasureDiversityResistance(row.arch, row.base,
                                                     /*trials=*/16,
                                                     /*seed0=*/9000);
    if (!stats.ok()) return Fail(stats.status());
    const defense::DiversityTrialStats& s = stats.value();
    std::printf("%-6s %-16s %7d %7d %8d %7d %8.0f%%\n",
                std::string(isa::ArchName(row.arch)).c_str(), row.label,
                s.trials, s.shells, s.crashes, s.other + s.traps,
                100.0 * s.survival_rate());
  }
  std::printf("\nExpected shape: code injection survives every boot (it\n"
              "targets the stack, which diversity does not move); the\n"
              "address-reuse attacks die on (nearly) every re-randomised\n"
              "layout — DAEDALUS turns deterministic RCE into a lottery.\n");
  return FinishObs(scope, metrics_path, trace_path);
}
