// §IV: the defenses the paper recommends, measured — the stack canary the
// authors compiled out, CFI-CaRE-style return protection, and compile-time
// software diversity — each against the strongest exploit (the ROP chain
// that defeats W^X+ASLR).
//
//   ./examples/mitigations_lab
#include <cstdio>

#include "src/attack/scenario.hpp"
#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

// Profiles the vulnerable lab build once, then fires the ROP chain at a
// target booted with `prot`.
connman::ProxyOutcome Fire(isa::Arch arch, loader::ProtectionConfig prot) {
  auto lab = loader::Boot(arch, loader::ProtectionConfig::WxAslr(), 100).value();
  connman::DnsProxy lab_proxy(*lab, connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab, lab_proxy);
  auto profile = extractor.Extract();
  connman::ProxyOutcome failed;
  if (!profile.ok()) {
    failed.detail = profile.status().ToString();
    return failed;
  }
  exploit::ExploitGenerator generator(profile.value());
  auto target = loader::Boot(arch, prot, 4242).value();
  connman::DnsProxy proxy(*target, connman::Version::k134);
  dns::Message query = dns::Message::Query(0x7E57, "victim.example");
  (void)proxy.AcceptClientQuery(dns::Encode(query).value());
  auto response =
      generator.BuildResponse(query, exploit::Technique::kRopMemcpyChain);
  if (!response.ok()) {
    failed.detail = response.status().ToString();
    return failed;
  }
  return proxy.HandleServerResponse(dns::Encode(response.value()).value());
}

}  // namespace

int main() {
  std::printf("connlab — mitigation lab (paper §IV)\n");
  std::printf("=====================================\n\n");
  std::printf("attack: the W^X+ASLR-proof memcpy ROP chain, per architecture\n\n");

  struct Row {
    const char* label;
    loader::ProtectionConfig prot;
  };
  const Row rows[] = {
      {"baseline (W^X+ASLR, as in the paper)", loader::ProtectionConfig::WxAslr()},
      {"+ stack canary (the paper compiled it out)",
       loader::ProtectionConfig::All()},
      {"+ CFI shadow stack (CFI CaRE model)",
       loader::ProtectionConfig::WxAslrCfi()},
      {"+ software diversity (attacker profiled build 1, device runs build 2)",
       loader::ProtectionConfig::Diversified(2)},
  };

  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    std::printf("---- %s ----\n", std::string(isa::ArchName(arch)).c_str());
    for (const Row& row : rows) {
      auto outcome = Fire(arch, row.prot);
      std::printf("  %-68s -> %s\n", row.label,
                  connman::OutcomeKindName(outcome.kind).data());
    }
    std::printf("\n");
  }
  std::printf("Only the unmitigated baseline yields a shell; each §IV defense\n"
              "stops the chain at a different point (canary: before the\n"
              "return; CFI: at the return; diversity: wrong gadget addresses).\n");
  return 0;
}
