// The §III-D experiment: a Wi-Fi Pineapple out-broadcasts the home AP,
// hands the victim a malicious DNS server via DHCP, and the device's next
// ordinary lookup becomes a root shell — no configuration change on the
// victim at any point.
//
//   ./examples/pineapple_mitm
#include <cstdio>

#include "src/attack/report.hpp"
#include "src/attack/scenario.hpp"
#include "src/util/log.hpp"

using namespace connlab;

int main() {
  util::SetLogLevel(util::LogLevel::kInfo);  // narrate the network activity
  std::printf("connlab — Wi-Fi Pineapple man-in-the-middle (paper §III-D)\n");
  std::printf("===========================================================\n\n");

  struct Case {
    isa::Arch arch;
    loader::ProtectionConfig prot;
    const char* label;
  };
  const Case cases[] = {
      {isa::Arch::kVX86, loader::ProtectionConfig::None(),
       "x86, no protections (feasibility check)"},
      {isa::Arch::kVARM, loader::ProtectionConfig::None(),
       "ARM, no protections"},
      {isa::Arch::kVARM, loader::ProtectionConfig::WxOnly(), "ARM, W^X"},
      {isa::Arch::kVARM, loader::ProtectionConfig::WxAslr(), "ARM, W^X+ASLR"},
  };

  for (const Case& c : cases) {
    std::printf("---- %s ----\n", c.label);
    attack::ScenarioConfig config;
    config.arch = c.arch;
    config.prot = c.prot;
    auto remote = attack::RunPineappleScenario(config);
    if (!remote.ok()) {
      std::printf("scenario error: %s\n\n", remote.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", attack::RenderRemoteResult(remote.value()).c_str());
  }

  std::printf("---- same chain, but the firmware runs patched 1.35 ----\n");
  attack::ScenarioConfig patched;
  patched.arch = isa::Arch::kVARM;
  patched.prot = loader::ProtectionConfig::WxAslr();
  patched.version = connman::Version::k135;
  auto remote = attack::RunPineappleScenario(patched);
  if (remote.ok()) {
    std::printf("%s\n", attack::RenderRemoteResult(remote.value()).c_str());
  }
  return 0;
}
