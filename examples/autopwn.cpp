// autopwn — the paper's §VII future-work item, realised: an automated
// exploit generator for the simulated stack-overflow targets. Given a
// target description it probes the frame, extracts a profile, picks the
// right technique, builds the payload and fires it, printing the whole
// run — including the hijacked instruction trace.
//
//   ./examples/autopwn [--arch=x86|arm] [--prot=none|wx|wx_aslr|all|cfi]
//                      [--version=1.34|1.35] [--technique=auto|inject|
//                       ret2libc|gadget|rop|dos] [--seed=N] [--trace]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/connman/dnsproxy.hpp"
#include "src/dns/craft.hpp"
#include "src/exploit/generator.hpp"
#include "src/exploit/profile.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

namespace {

struct Options {
  isa::Arch arch = isa::Arch::kVARM;
  loader::ProtectionConfig prot = loader::ProtectionConfig::WxAslr();
  connman::Version version = connman::Version::k134;
  std::optional<exploit::Technique> technique;
  std::uint64_t seed = 4242;
  bool trace = false;
  bool ok = true;
};

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg]() {
      const auto eq = arg.find('=');
      return eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    }();
    if (arg.rfind("--arch=", 0) == 0) {
      if (value == "x86") {
        opt.arch = isa::Arch::kVX86;
      } else if (value == "arm") {
        opt.arch = isa::Arch::kVARM;
      } else {
        opt.ok = false;
      }
    } else if (arg.rfind("--prot=", 0) == 0) {
      if (value == "none") opt.prot = loader::ProtectionConfig::None();
      else if (value == "wx") opt.prot = loader::ProtectionConfig::WxOnly();
      else if (value == "wx_aslr") opt.prot = loader::ProtectionConfig::WxAslr();
      else if (value == "all") opt.prot = loader::ProtectionConfig::All();
      else if (value == "cfi") opt.prot = loader::ProtectionConfig::WxAslrCfi();
      else opt.ok = false;
    } else if (arg.rfind("--version=", 0) == 0) {
      if (value == "1.34") opt.version = connman::Version::k134;
      else if (value == "1.35") opt.version = connman::Version::k135;
      else opt.ok = false;
    } else if (arg.rfind("--technique=", 0) == 0) {
      if (value == "auto") opt.technique.reset();
      else if (value == "inject") opt.technique = exploit::Technique::kCodeInjection;
      else if (value == "ret2libc") opt.technique = exploit::Technique::kRet2Libc;
      else if (value == "gadget") opt.technique = exploit::Technique::kArmGadgetExeclp;
      else if (value == "rop") opt.technique = exploit::Technique::kRopMemcpyChain;
      else if (value == "dos") opt.technique = exploit::Technique::kDosCrash;
      else opt.ok = false;
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.ok = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      opt.ok = false;
    }
  }
  return opt;
}

void Usage() {
  std::printf(
      "usage: autopwn [--arch=x86|arm] [--prot=none|wx|wx_aslr|all|cfi]\n"
      "               [--version=1.34|1.35]\n"
      "               [--technique=auto|inject|ret2libc|gadget|rop|dos]\n"
      "               [--seed=N] [--trace]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  if (!opt.ok) {
    Usage();
    return 2;
  }
  std::printf("autopwn: target %s / %s / connman %s\n",
              std::string(isa::ArchName(opt.arch)).c_str(),
              opt.prot.ToString().c_str(),
              std::string(connman::VersionName(opt.version)).c_str());

  // Phase 1: study a local copy (the controlled environment).
  std::printf("[*] probing a local instance...\n");
  auto lab = loader::Boot(opt.arch, opt.prot, 100);
  if (!lab.ok()) {
    std::printf("[-] lab boot failed: %s\n", lab.status().ToString().c_str());
    return 1;
  }
  connman::DnsProxy lab_proxy(*lab.value(), connman::Version::k134);
  exploit::ProfileExtractor extractor(*lab.value(), lab_proxy);
  auto profile = extractor.Extract();
  if (!profile.ok()) {
    std::printf("[-] cannot exploit: %s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::printf("[+] %s\n", profile.value().ToString().c_str());

  // Phase 2: build the payload.
  const exploit::Technique technique =
      opt.technique.value_or(exploit::TechniqueFor(opt.arch, opt.prot));
  std::printf("[*] technique: %s\n",
              std::string(exploit::TechniqueName(technique)).c_str());
  exploit::ExploitGenerator generator(profile.value());
  auto labels = generator.BuildLabels(technique);
  if (!labels.ok()) {
    std::printf("[-] payload build failed: %s\n",
                labels.status().ToString().c_str());
    return 1;
  }
  std::printf("[+] payload: %zu DNS labels\n", labels.value().size());

  // Phase 3: fire at the target.
  std::printf("[*] attacking target (seed %llu)...\n",
              static_cast<unsigned long long>(opt.seed));
  auto target = loader::Boot(opt.arch, opt.prot, opt.seed);
  if (!target.ok()) return 1;
  if (opt.trace) target.value()->cpu->set_trace_limit(24);
  connman::DnsProxy proxy(*target.value(), opt.version);
  dns::Message query = dns::Message::Query(0x7E57, "victim.device.lan");
  if (!proxy.AcceptClientQuery(dns::Encode(query).value()).ok()) return 1;
  auto evil = dns::MaliciousAResponse(query, labels.value());
  auto outcome = proxy.HandleServerResponse(dns::Encode(evil).value());
  std::printf("[%c] outcome: %s\n",
              outcome.kind == connman::ProxyOutcome::Kind::kShell ? '+' : '-',
              outcome.ToString().c_str());
  for (const auto& event : target.value()->cpu->events()) {
    std::printf("    event: %s\n", event.ToString().c_str());
  }
  if (opt.trace) {
    std::printf("\nhijacked execution trace (last %zu steps):\n%s",
                target.value()->cpu->trace().size(),
                target.value()->cpu->TraceString().c_str());
  }
  return outcome.kind == connman::ProxyOutcome::Kind::kShell ? 0 : 1;
}
