// Quickstart: boot a simulated IoT target, look at its process image the
// way the paper's authors did with gdb, run benign DNS traffic through the
// Connman dnsproxy, then watch CVE-2017-12865 take the daemon down.
//
//   ./examples/quickstart
#include <cstdio>

#include "src/connman/dnsproxy.hpp"
#include "src/dbg/debugger.hpp"
#include "src/dns/craft.hpp"
#include "src/loader/boot.hpp"

using namespace connlab;

int main() {
  std::printf("connlab quickstart — simulated Connman 1.34 target\n");
  std::printf("====================================================\n\n");

  // 1. Boot the device firmware: VARM (Raspberry-Pi-flavoured), no
  //    exploit mitigations, like the paper's first experiments.
  auto booted = loader::Boot(isa::Arch::kVARM,
                             loader::ProtectionConfig::None(), /*seed=*/2026);
  if (!booted.ok()) {
    std::printf("boot failed: %s\n", booted.status().ToString().c_str());
    return 1;
  }
  loader::System& sys = *booted.value();
  std::printf("booted %s, protections: %s\n\n",
              std::string(isa::ArchName(sys.arch)).c_str(),
              sys.prot.ToString().c_str());

  // 2. Examine the process, gdb-style.
  dbg::Debugger dbg(sys);
  std::printf("process mappings:\n%s\n", dbg.Maps().c_str());
  const auto parse = dbg.SymbolAddr("connman.parse_response").value_or(0);
  std::printf("parse_response lives at 0x%08x (%s)\n", parse,
              dbg.Describe(parse).c_str());
  const auto plt = dbg.SymbolAddr("plt.memcpy").value_or(0);
  std::printf("disassembly of memcpy@plt:\n%s\n",
              dbg.Disassemble(plt, 16).value_or("?").c_str());

  // 3. Benign traffic: a local app resolves a name through the dnsproxy.
  connman::DnsProxy proxy(sys, connman::Version::k134);
  dns::Message query = dns::Message::Query(0x1001, "updates.vendor.example");
  auto upstream = proxy.AcceptClientQuery(dns::Encode(query).value());
  if (!upstream.ok()) return 1;
  dns::Message response = dns::Message::ResponseFor(query);
  response.answers.push_back(
      dns::MakeA("updates.vendor.example", "93.184.216.34", 300));
  auto outcome = proxy.HandleServerResponse(dns::Encode(response).value());
  std::printf("benign response outcome: %s\n", outcome.ToString().c_str());
  auto cached = proxy.cache().Lookup("updates.vendor.example", proxy.now() + 1);
  std::printf("cache now holds %zu record(s) for updates.vendor.example\n\n",
              cached.size());

  // 4. The CVE: a response whose name expands past the 1024-byte buffer.
  dns::Message query2 = dns::Message::Query(0x1002, "updates.vendor.example");
  (void)proxy.AcceptClientQuery(dns::Encode(query2).value());
  auto junk = dns::JunkLabels(4000);
  dns::Message evil = dns::MaliciousAResponse(query2, junk.value());
  auto crash = proxy.HandleServerResponse(dns::Encode(evil).value());
  std::printf("malicious response outcome: %s\n", crash.ToString().c_str());
  std::printf("bytes expanded before the fault: %u (buffer is %u)\n",
              crash.name_bytes_written, connman::kNameBufSize);
  std::printf("\nThat crash is the DoS half of CVE-2017-12865. Run\n"
              "./examples/six_attacks for the RCE half.\n");
  return 0;
}
