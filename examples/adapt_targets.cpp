// §V: pointing the same exploit machinery at other vulnerable services —
// "minimasq" (dnsmasq-style DNS forwarder, different frame geometry) and
// "httpcamd" (HTTP body overflow, different delivery vector).
//
//   ./examples/adapt_targets
#include <cstdio>

#include "src/adapt/retarget.hpp"

using namespace connlab;

int main() {
  std::printf("connlab — adapting the exploit to other targets (paper §V)\n");
  std::printf("============================================================\n\n");

  const loader::ProtectionConfig levels[] = {
      loader::ProtectionConfig::None(),
      loader::ProtectionConfig::WxOnly(),
      loader::ProtectionConfig::WxAslr(),
  };

  std::printf("minimasq (DNS delivery — \"minimal modification\": only the\n"
              "frame offsets in the TargetProfile change):\n");
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const auto& prot : levels) {
      auto result = adapt::AttackMinimasq(arch, prot);
      std::printf("  %s\n", result.ok()
                                ? result.value().ToString().c_str()
                                : result.status().ToString().c_str());
    }
  }

  std::printf("\nhttpcamd (HTTP delivery — \"moderate modification\": the\n"
              "packet-crafting layer swaps from DNS labels to a POST body):\n");
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const auto& prot : levels) {
      auto result = adapt::AttackHttpCamd(arch, prot);
      std::printf("  %s\n", result.ok()
                                ? result.value().ToString().c_str()
                                : result.status().ToString().c_str());
    }
  }
  std::printf("\nBoth services fall to the unmodified payload arithmetic; only\n"
              "addresses and framing changed — exactly the paper's claim.\n");

  std::printf("\nresolvd (bug-class zoo — compression-pointer loop: a\n"
              "control-flow-free DoS, so the crash IS the attack working):\n");
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const auto& prot : levels) {
      auto result = adapt::AttackResolvd(arch, prot);
      std::printf("  %s\n", result.ok()
                                ? result.value().ToString().c_str()
                                : result.status().ToString().c_str());
    }
  }

  std::printf("\ncamstored (bug-class zoo — heap-metadata overwrite: groom,\n"
              "overflow a chunk header, and let free() do the arbitrary\n"
              "write; W^X degrades it to DoS, heap-integrity traps it):\n");
  loader::ProtectionConfig hardened = loader::ProtectionConfig::None();
  hardened.heap_integrity = true;
  const loader::ProtectionConfig heap_levels[] = {
      loader::ProtectionConfig::None(),
      loader::ProtectionConfig::WxAslr(),
      hardened,
  };
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const auto& prot : heap_levels) {
      auto result = adapt::AttackCamstored(arch, prot);
      std::printf("  %s\n", result.ok()
                                ? result.value().ToString().c_str()
                                : result.status().ToString().c_str());
    }
  }
  std::printf("\nThe zoo separates bug class from defense class: stack\n"
              "defenses never touch the heap exploit, heap integrity never\n"
              "touches the stack smash, and nothing touches the pointer\n"
              "loop but input validation.\n");
  return 0;
}
