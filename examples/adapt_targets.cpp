// §V: pointing the same exploit machinery at other vulnerable services —
// "minimasq" (dnsmasq-style DNS forwarder, different frame geometry) and
// "httpcamd" (HTTP body overflow, different delivery vector).
//
//   ./examples/adapt_targets
#include <cstdio>

#include "src/adapt/retarget.hpp"

using namespace connlab;

int main() {
  std::printf("connlab — adapting the exploit to other targets (paper §V)\n");
  std::printf("============================================================\n\n");

  const loader::ProtectionConfig levels[] = {
      loader::ProtectionConfig::None(),
      loader::ProtectionConfig::WxOnly(),
      loader::ProtectionConfig::WxAslr(),
  };

  std::printf("minimasq (DNS delivery — \"minimal modification\": only the\n"
              "frame offsets in the TargetProfile change):\n");
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const auto& prot : levels) {
      auto result = adapt::AttackMinimasq(arch, prot);
      std::printf("  %s\n", result.ok()
                                ? result.value().ToString().c_str()
                                : result.status().ToString().c_str());
    }
  }

  std::printf("\nhttpcamd (HTTP delivery — \"moderate modification\": the\n"
              "packet-crafting layer swaps from DNS labels to a POST body):\n");
  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    for (const auto& prot : levels) {
      auto result = adapt::AttackHttpCamd(arch, prot);
      std::printf("  %s\n", result.ok()
                                ? result.value().ToString().c_str()
                                : result.status().ToString().c_str());
    }
  }
  std::printf("\nBoth services fall to the unmodified payload arithmetic; only\n"
              "addresses and framing changed — exactly the paper's claim.\n");
  return 0;
}
