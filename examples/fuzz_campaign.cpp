// Fuzz campaign walkthrough: rediscover CVE-2017-12865 from benign seeds.
//
// Runs the coverage-guided, DNS-structure-aware fuzzer against the
// vulnerable dnsproxy, prints the campaign's progress the way an AFL user
// would read its status screen, triages + minimizes the crashes, emits a
// reproducer, replays it, then runs the same campaign against the patched
// 1.35 build to show the fix holds.
//
//   ./examples/fuzz_campaign [seed] [execs] [workers] [target]
//                            [corpus_file] [dict_file]
//                            [--sync-interval=N]
//                            [--trace=t.json] [--metrics=m.json]
//                            [--repro-dir=dir] [--distill]
//                            [--no-superblocks] [--no-block-links]
//                            [--no-shared-blocks] [--help]
//
// Execution-tier knobs (all tiers are on by default; the differential suite
// proves every combination produces identical campaigns, so these are
// debugging and A/B-measurement knobs, not behaviour switches):
//   --no-superblocks   pin the victim CPUs to the plain interpreter
//   --no-block-links   keep superblocks but disable block-to-block linking
//                      and host-fn/syscall continuation (the bare tier)
//   --no-shared-blocks compile every block privately instead of sharing
//                      compiled blocks across workers via the per-image
//                      block registry
//
// `--sync-interval=N` sets how many of its own execs each worker runs
// between cross-worker corpus exchanges (multi-worker only; 0 disables
// sharing so workers explore independently until the final merge). Either
// setting is deterministic for a fixed (seed, workers).
//
// `corpus_file` persists the merged corpus across invocations (missing file
// = first run, creates it). `dict_file` is an AFL-style token dictionary;
// the literal value `builtin` selects the built-in DNS dictionary.
// `--distill` runs coverage-ranked corpus distillation before the save, so
// a nightly re-seeded corpus stays a minimal covering set.
//
// Observability flags (order-independent, stripped before positional args):
//   --trace=PATH    write a chrome://tracing / Perfetto JSON of the run
//   --metrics=PATH  write the scraped metrics registry as flat JSON; the
//                   `fuzz.execs` counter equals the reported exec count
//   --repro-dir=DIR write one reproducer file per crash bucket
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/fuzz/dict.hpp"
#include "src/fuzz/fuzzer.hpp"
#include "src/obs/obs.hpp"
#include "src/util/hexdump.hpp"

using namespace connlab;

namespace {

int Fail(const util::Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintReport(const fuzz::FuzzReport& report) {
  const fuzz::FuzzStats& s = report.stats;
  std::printf("  execs            : %llu (%.0f/sec, %.2fs wall)\n",
              static_cast<unsigned long long>(s.execs), s.execs_per_sec,
              s.seconds);
  std::printf("  crashing execs   : %llu\n",
              static_cast<unsigned long long>(s.crashing_execs));
  std::printf("  crash buckets    : %zu (after dedup)\n",
              report.triage.buckets().size());
  std::printf("  corpus entries   : %zu\n", s.corpus_size);
  std::printf("  coverage         : %s (digest %016llx)\n",
              report.coverage.Summary().c_str(),
              static_cast<unsigned long long>(s.coverage_digest));
  std::printf("  target reboots   : %llu\n\n",
              static_cast<unsigned long long>(s.reboots));
}

/// Pulls `--name=value` out of the argument list (anywhere on the line) so
/// the positional parameters keep their historical meaning.
std::string TakeFlag(std::vector<std::string>& args, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (it->rfind(prefix, 0) == 0) {
      std::string value = it->substr(prefix.size());
      args.erase(it);
      return value;
    }
  }
  return {};
}

/// Pulls a bare `--name` switch out of the argument list.
bool TakeBareFlag(std::vector<std::string>& args, const std::string& name) {
  const std::string flag = "--" + name;
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (*it == flag) {
      args.erase(it);
      return true;
    }
  }
  return false;
}

void PrintUsage() {
  std::printf(
      "usage: fuzz_campaign [seed] [execs] [workers] [target]\n"
      "                     [corpus_file] [dict_file]\n"
      "                     [--sync-interval=N] [--trace=t.json]\n"
      "                     [--metrics=m.json] [--repro-dir=dir] [--distill]\n"
      "                     [--no-superblocks] [--no-block-links]\n"
      "                     [--no-shared-blocks] [--help]\n"
      "\n"
      "positional (defaults): seed 42, execs 20000, workers 1,\n"
      "  target dnsproxy (dnsproxy|minimasq|httpcamd|resolvd|camstored),\n"
      "  corpus_file persists the merged corpus, dict_file is an AFL-style\n"
      "  dictionary ('builtin' = built-in DNS tokens).\n"
      "\n"
      "execution-tier knobs (all on by default; campaign results are\n"
      "byte-identical either way — A/B measurement knobs only):\n"
      "  --no-superblocks    plain interpreter, no threaded-code tier\n"
      "  --no-block-links    bare superblocks: no block-to-block linking,\n"
      "                      no host-fn/syscall continuation\n"
      "  --no-shared-blocks  per-CPU block compilation only; skip the\n"
      "                      process-wide per-image block registry\n"
      "\n"
      "other flags:\n"
      "  --sync-interval=N   execs each worker runs between cross-worker\n"
      "                      corpus exchanges (0 = independent until merge)\n"
      "  --distill           coverage-ranked corpus distillation on save\n"
      "  --trace=PATH        chrome://tracing JSON of the run\n"
      "  --metrics=PATH      flat JSON dump of the metrics registry\n"
      "  --repro-dir=DIR     one reproducer file per crash bucket\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (TakeBareFlag(args, "help")) {
    PrintUsage();
    return 0;
  }
  const std::string trace_path = TakeFlag(args, "trace");
  const std::string metrics_path = TakeFlag(args, "metrics");
  const std::string repro_dir = TakeFlag(args, "repro-dir");
  const std::string sync_flag = TakeFlag(args, "sync-interval");
  const bool distill = TakeBareFlag(args, "distill");
  const bool no_superblocks = TakeBareFlag(args, "no-superblocks");
  const bool no_block_links = TakeBareFlag(args, "no-block-links");
  const bool no_shared_blocks = TakeBareFlag(args, "no-shared-blocks");

  fuzz::FuzzConfig config;
  config.target.superblocks = !no_superblocks;
  config.target.block_links = !no_block_links;
  config.target.shared_blocks = !no_shared_blocks;
  if (!sync_flag.empty()) {
    config.sync_interval = std::strtoull(sync_flag.c_str(), nullptr, 0);
  }
  config.seed = args.size() > 0 ? std::strtoull(args[0].c_str(), nullptr, 0) : 42;
  config.max_execs =
      args.size() > 1 ? std::strtoull(args[1].c_str(), nullptr, 0) : 20000;
  config.workers = args.size() > 2 ? std::strtoul(args[2].c_str(), nullptr, 0) : 1;
  if (args.size() > 3) {
    auto kind = fuzz::ParseTargetKind(args[3]);
    if (!kind.ok()) return Fail(kind.status());
    config.target.kind = kind.value();
  }
  if (args.size() > 4) config.corpus_path = args[4];
  config.distill = distill;
  if (args.size() > 5) {
    if (args[5] == "builtin") {
      config.dictionary = fuzz::DefaultDnsDictionary();
    } else {
      auto dict = fuzz::LoadDictionaryFile(args[5]);
      if (!dict.ok()) return Fail(dict.status());
      config.dictionary = std::move(dict).value();
    }
  }

  std::printf("connlab fuzz campaign — %s\n",
              std::string(fuzz::TargetKindName(config.target.kind)).c_str());
  std::printf("=====================================================\n");
  std::printf("seed %llu, %llu execs, %zu worker(s), benign seeds only\n",
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(config.max_execs),
              config.workers);
  if (config.workers > 1) {
    if (config.sync_interval == 0) {
      std::printf("cross-worker sync: off (independent exploration)\n");
    } else {
      std::printf("cross-worker sync: every %llu execs per worker\n",
                  static_cast<unsigned long long>(config.sync_interval));
    }
  }
  if (!config.corpus_path.empty()) {
    std::printf("persistent corpus: %s%s\n", config.corpus_path.c_str(),
                config.distill ? " (distilled on save)" : "");
  }
  if (!config.dictionary.empty()) {
    std::printf("dictionary: %zu token(s)\n", config.dictionary.size());
  }
  std::printf("\n");

  // The scope opens right before the campaign and its exports are written
  // right after, so the scraped fuzz.execs is exactly this campaign's exec
  // count — the patched-build rerun below happens outside the window.
  obs::Scope scope(obs::ScopeOptions{.trace = !trace_path.empty()});

  auto report_or = fuzz::Fuzzer(config).Run();
  if (!report_or.ok()) return Fail(report_or.status());
  fuzz::FuzzReport& report = report_or.value();
  std::printf("campaign finished:\n");
  PrintReport(report);

  if (!metrics_path.empty()) {
    auto status = scope.WriteMetricsJson(metrics_path);
    if (!status.ok()) return Fail(status);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    auto status = scope.WriteTraceJson(trace_path);
    if (!status.ok()) return Fail(status);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty() || !trace_path.empty()) {
    std::printf("\nrun metrics:\n%s\n", scope.RenderTable().c_str());
  }

  if (!repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(repro_dir, ec);
    if (ec) {
      std::printf("error: cannot create %s: %s\n", repro_dir.c_str(),
                  ec.message().c_str());
      return 1;
    }
    std::size_t written = 0;
    for (const fuzz::CrashBucket& bucket : report.triage.buckets()) {
      const std::string path = repro_dir + "/bucket-" +
                               std::to_string(written) + ".repro";
      auto status = obs::WriteTextFile(
          path, fuzz::SerializeReproducer(config.target, bucket));
      if (!status.ok()) return Fail(status);
      ++written;
    }
    std::printf("%zu reproducer(s) written to %s/\n", written,
                repro_dir.c_str());
  }

  if (report.triage.buckets().empty()) {
    std::printf("no crashes found — try a bigger budget.\n");
    return 1;
  }

  for (const fuzz::CrashBucket& bucket : report.triage.buckets()) {
    std::printf("bucket %s\n", fuzz::FormatCrashKey(bucket.key).c_str());
    std::printf("  first hit at exec %llu, %llu hit(s) total\n",
                static_cast<unsigned long long>(bucket.first_exec),
                static_cast<unsigned long long>(bucket.hits));
    std::printf("  witness %zu bytes -> minimized %zu bytes\n",
                bucket.witness.size(), bucket.minimized.size());
  }

  // The first bucket's reproducer, serialized and replayed from scratch.
  const fuzz::CrashBucket& head = report.triage.buckets().front();
  const std::string repro_text =
      fuzz::SerializeReproducer(config.target, head);
  std::printf("\nreproducer file:\n%s\n", repro_text.c_str());
  std::printf("minimized input:\n%s\n",
              util::HexDump(head.minimized, 0).c_str());

  auto probe = fuzz::MakeTarget(config.target);
  if (!probe.ok()) return Fail(probe.status());
  if (probe.value()->stateful_across_execs()) {
    // The daemon keeps guest state across executions, so the crash is a
    // property of the request *sequence*, not of one input — the witness
    // need not reproduce on a freshly booted instance.
    std::printf(
        "replay: skipped — %s keeps heap state across requests, so the\n"
        "crash is a sequence property; replay the whole campaign (same\n"
        "seed) to reproduce it.\n\n",
        std::string(probe.value()->name()).c_str());
  } else {
    auto parsed = fuzz::ParseReproducer(repro_text);
    if (!parsed.ok()) return Fail(parsed.status());
    auto replay = fuzz::ReplayReproducer(parsed.value());
    if (!replay.ok()) return Fail(replay.status());
    std::printf("replay: %s (pc=0x%08x, %u bytes expanded%s)\n\n",
                replay.value().detail.c_str(), replay.value().pc,
                replay.value().bytes_expanded,
                replay.value().overflow ? ", buffer overflowed" : "");
  }

  // Same campaign, patched build: the fix holds or we want to know.
  if (config.target.kind == fuzz::TargetKind::kDnsproxy) {
    std::printf("re-running the identical campaign against patched 1.35...\n");
    fuzz::FuzzConfig patched = config;
    patched.target.patched = true;
    // The persisted corpus tracks the vulnerable build's campaign; don't
    // overwrite it with the patched run's.
    patched.corpus_path.clear();
    auto patched_report = fuzz::Fuzzer(patched).Run();
    if (!patched_report.ok()) return Fail(patched_report.status());
    PrintReport(patched_report.value());
    if (!patched_report.value().triage.buckets().empty()) {
      std::printf("patched build crashed — regression!\n");
      return 1;
    }
    std::printf("patched build survived the campaign that killed 1.34.\n");
  }
  return 0;
}
