// The paper's core result: six proof-of-concept exploits — two
// architectures x three protection levels — each spawning a root shell,
// plus the cross-technique escalation table and the defense rows.
//
//   ./examples/six_attacks
#include <cstdio>

#include "src/attack/matrix.hpp"
#include "src/attack/report.hpp"

using namespace connlab;

int main() {
  std::printf("connlab — the six-attack matrix (paper §III-A/B/C)\n\n");

  auto six = attack::RunSixAttackMatrix();
  if (!six.ok()) {
    std::printf("matrix failed: %s\n", six.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              attack::RenderMatrixTable(six.value(),
                                        "matched technique per level — all six succeed")
                  .c_str());

  for (isa::Arch arch : {isa::Arch::kVX86, isa::Arch::kVARM}) {
    auto cross = attack::RunCrossTechniqueMatrix(arch);
    if (!cross.ok()) return 1;
    std::printf("%s\n",
                attack::RenderMatrixTable(
                    cross.value(),
                    std::string("escalation on ") +
                        std::string(isa::ArchName(arch)) +
                        " — where each technique stops working")
                    .c_str());
  }

  auto defense = attack::RunDefenseMatrix();
  if (!defense.ok()) return 1;
  std::printf("%s\n",
              attack::RenderMatrixTable(
                  defense.value(), "defenses the paper recommends — all hold")
                  .c_str());
  return 0;
}
